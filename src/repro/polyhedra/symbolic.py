"""Symbolic-coefficient inequalities (paper Section 5.1 extension).

"We allow the coefficients in the linear inequalities to be of the form
+-(b0 + b1*u1 + ... + bm*um) where b >= 0 are integers and u > 0 are
symbolic constants.  The scope of our technique is limited to those
cases where the result of the projection also has coefficients that are
linear combinations of symbolic constants."

This module implements exactly that: inequalities whose coefficients
are non-negative linear forms in declared positive *size parameters*
(block sizes ``B``, machine sizes ``P``).  Fourier-Motzkin elimination
combines bounds by cross-multiplying coefficients; a combination whose
coefficient product would leave the linear class raises
:class:`SymbolicUnsupportedError` -- the paper's stated scope limit,
surfaced rather than mis-handled.

It powers symbolic block sizes in decompositions: the Figure 7 loop
bounds can be produced with a *symbolic* block::

    for i = max(3, B*p) to min(N, B*p + B - 1)

without fixing ``B`` at compile time (see ``symbolic_block_scan``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from .affine import LinExpr


class SymbolicUnsupportedError(Exception):
    """The projection result would not be linear in the size parameters."""


@dataclass(frozen=True)
class SymCoef:
    """A coefficient ``b0 + sum(b_m * u_m)`` with b >= 0, u > 0.

    ``terms`` maps size-parameter names to non-negative integers.
    """

    const: int = 0
    terms: Tuple[Tuple[str, int], ...] = ()

    @staticmethod
    def of(value) -> "SymCoef":
        if isinstance(value, SymCoef):
            return value
        if isinstance(value, int):
            return SymCoef(const=value)
        if isinstance(value, str):
            return SymCoef(terms=((value, 1),))
        raise TypeError(value)

    def __post_init__(self):
        clean = tuple(
            sorted((n, c) for n, c in dict(self.terms).items() if c)
        )
        object.__setattr__(self, "terms", clean)

    def is_integer(self) -> bool:
        return not self.terms

    def is_zero(self) -> bool:
        return self.const == 0 and not self.terms

    def is_positive(self) -> bool:
        """Positive for every valuation (b >= 0, u >= 1)?"""
        if any(c < 0 for _n, c in self.terms) or self.const < 0:
            return False
        return self.const > 0 or any(c > 0 for _n, c in self.terms)

    def is_nonnegative(self) -> bool:
        return self.const >= 0 and all(c >= 0 for _n, c in self.terms)

    def __add__(self, other: "SymCoef") -> "SymCoef":
        other = SymCoef.of(other)
        merged = dict(self.terms)
        for name, coeff in other.terms:
            merged[name] = merged.get(name, 0) + coeff
        return SymCoef(self.const + other.const, tuple(merged.items()))

    def __mul__(self, other) -> "SymCoef":
        """Product -- only defined while it stays linear."""
        other = SymCoef.of(other)
        if self.is_integer():
            return SymCoef(
                other.const * self.const,
                tuple((n, c * self.const) for n, c in other.terms),
            )
        if other.is_integer():
            return other.__mul__(self)
        raise SymbolicUnsupportedError(
            f"coefficient product ({self}) * ({other}) is not linear"
        )

    def evaluate(self, env: Mapping[str, int]) -> int:
        return self.const + sum(c * env[n] for n, c in self.terms)

    def __str__(self) -> str:
        parts = [f"{c}*{n}" if c != 1 else n for n, c in self.terms]
        if self.const or not parts:
            parts.append(str(self.const))
        return " + ".join(parts)


@dataclass(frozen=True)
class SymExpr:
    """``sum(coef[v] * v) + const`` with SymCoef coefficients."""

    coeffs: Tuple[Tuple[str, SymCoef], ...] = ()
    const: SymCoef = field(default_factory=SymCoef)

    @staticmethod
    def build(
        coeffs: Mapping[str, object] = (), const: object = 0
    ) -> "SymExpr":
        cleaned = tuple(
            sorted(
                (v, SymCoef.of(c))
                for v, c in dict(coeffs).items()
                if not SymCoef.of(c).is_zero()
            )
        )
        return SymExpr(cleaned, SymCoef.of(const))

    def coeff(self, var: str) -> SymCoef:
        for v, c in self.coeffs:
            if v == var:
                return c
        return SymCoef()

    def drop(self, var: str) -> "SymExpr":
        return SymExpr(
            tuple((v, c) for v, c in self.coeffs if v != var), self.const
        )

    def __add__(self, other: "SymExpr") -> "SymExpr":
        merged: Dict[str, SymCoef] = dict(self.coeffs)
        for v, c in other.coeffs:
            merged[v] = merged.get(v, SymCoef()) + c
        return SymExpr.build(merged, self.const + other.const)

    def scale(self, factor: SymCoef) -> "SymExpr":
        return SymExpr(
            tuple((v, c * factor) for v, c in self.coeffs),
            self.const * factor,
        )

    def negate(self) -> "SymExpr":
        minus_one = SymCoef(const=-1)

        def neg(c: SymCoef) -> SymCoef:
            return SymCoef(-c.const, tuple((n, -k) for n, k in c.terms))

        return SymExpr(
            tuple((v, neg(c)) for v, c in self.coeffs), neg(self.const)
        )

    def evaluate(self, env: Mapping[str, int]) -> int:
        total = self.const.evaluate(env)
        for v, c in self.coeffs:
            total += c.evaluate(env) * env[v]
        return total

    def __str__(self) -> str:
        parts = [f"({c})*{v}" for v, c in self.coeffs]
        parts.append(f"({self.const})")
        return " + ".join(parts)


@dataclass
class SymSystem:
    """A conjunction of ``expr >= 0`` with symbolic coefficients."""

    inequalities: List[SymExpr] = field(default_factory=list)

    def add(self, expr: SymExpr) -> None:
        self.inequalities.append(expr)

    def add_ge(self, lhs: SymExpr, rhs: SymExpr) -> None:
        self.add(lhs + rhs.negate())

    def bounds_on(
        self, var: str
    ) -> Tuple[List[Tuple[SymCoef, SymExpr]], List[Tuple[SymCoef, SymExpr]],
               List[SymExpr]]:
        """Split into lowers ``A*v >= f``, uppers ``A*v <= g``, rest.

        Coefficient signs must be syntactically known (the Section 5.1
        form guarantees it); an indefinite coefficient raises.
        """
        lowers: List[Tuple[SymCoef, SymExpr]] = []
        uppers: List[Tuple[SymCoef, SymExpr]] = []
        rest: List[SymExpr] = []
        for ineq in self.inequalities:
            coef = ineq.coeff(var)
            if coef.is_zero():
                rest.append(ineq)
                continue
            other = ineq.drop(var)
            if coef.is_positive():
                # coef*v + other >= 0  =>  coef*v >= -other
                lowers.append((coef, other.negate()))
                continue
            neg = SymCoef(-coef.const, tuple((n, -c) for n, c in coef.terms))
            if neg.is_positive():
                # -neg*v + other >= 0  =>  neg*v <= other
                uppers.append((neg, other))
                continue
            raise SymbolicUnsupportedError(
                f"indefinite coefficient {coef} of {var}"
            )
        return lowers, uppers, rest

    def eliminate(self, var: str) -> "SymSystem":
        """One Fourier-Motzkin step with symbolic cross-multiplication.

        Raises SymbolicUnsupportedError when a combination's
        coefficients leave the linear class (the paper's scope limit).
        """
        from .stats import STATS

        lowers, uppers, rest = self.bounds_on(var)
        STATS.symbolic_pairs_considered += len(lowers) * len(uppers)
        out = SymSystem(list(rest))
        seen = set(out.inequalities)
        for a, f in lowers:
            for b, g in uppers:
                # a*v >= f, b*v <= g  =>  a*g - b*f >= 0
                combined = g.scale(a) + f.scale(b).negate()
                if combined in seen:
                    continue
                seen.add(combined)
                STATS.symbolic_pairs_materialized += 1
                out.add(combined)
        return out

    def satisfies(self, env: Mapping[str, int]) -> bool:
        return all(ineq.evaluate(env) >= 0 for ineq in self.inequalities)

    def __str__(self) -> str:
        return "{ " + " ; ".join(
            f"{i} >= 0" for i in self.inequalities
        ) + " }"


@dataclass
class SymBound:
    """A loop bound ``ceil(expr / divisor)`` / ``floor(expr / divisor)``."""

    expr: SymExpr
    divisor: SymCoef

    def render(self, kind: str) -> str:
        if self.divisor.is_integer() and self.divisor.const == 1:
            return str(self.expr)
        return f"{kind}({self.expr}, {self.divisor})"


@dataclass
class SymScanLevel:
    var: str
    lowers: List[SymBound]
    uppers: List[SymBound]

    def describe(self) -> str:
        lo = [b.render("ceild") for b in self.lowers]
        hi = [b.render("floord") for b in self.uppers]
        lo_text = lo[0] if len(lo) == 1 else "max(" + ", ".join(lo) + ")"
        hi_text = hi[0] if len(hi) == 1 else "min(" + ", ".join(hi) + ")"
        return f"for {self.var} = {lo_text} to {hi_text}"


def symbolic_scan(
    system: SymSystem, order: Sequence[str]
) -> List[SymScanLevel]:
    """Ancourt-Irigoin scanning with symbolic coefficients.

    Returns the loop bounds outermost-first; every elimination must
    stay within the linear-coefficient class.
    """
    work = system
    levels_reversed: List[SymScanLevel] = []
    ordered = list(order)
    for idx, var in enumerate(reversed(ordered)):
        lowers, uppers, _rest = work.bounds_on(var)
        levels_reversed.append(
            SymScanLevel(
                var,
                [SymBound(f, a) for a, f in lowers],
                [SymBound(g, b) for b, g in uppers],
            )
        )
        if idx < len(ordered) - 1:
            # the outermost variable needs no elimination (no bounds
            # depend on it) -- and eliminating it could leave the
            # linear class (e.g. a B*B product), which the paper's
            # restriction forbids
            work = work.eliminate(var)
    return list(reversed(levels_reversed))


def symbolic_block_scan(
    loop_var: str,
    loop_lower: int,
    loop_upper_param: str,
    block_param: str,
    proc_var: str = "p",
) -> List[SymScanLevel]:
    """The Figure 7 computation scan with a *symbolic* block size.

    Builds { B*p <= i <= B*p + B - 1, lower <= i <= N, p >= 0 } and
    scans it in (p, i) order, yielding::

        for p = 0 to floord(N, B)
        for i = max(ceil(lower), B*p) to min(N, B*p + B - 1)
    """
    i, p, N, B = loop_var, proc_var, loop_upper_param, block_param
    sys_ = SymSystem()
    # i >= lower
    sys_.add(SymExpr.build({i: 1}, -loop_lower))
    # i <= N
    sys_.add(SymExpr.build({i: 1}, 0).negate() + SymExpr.build({N: 1}))
    # B*p <= i
    sys_.add(
        SymExpr.build({i: 1}) + SymExpr.build({p: SymCoef.of(B)}).negate()
    )
    # i <= B*p + B - 1
    sys_.add(
        SymExpr.build({p: SymCoef.of(B)}, SymCoef.of(B))
        + SymExpr.build({}, -1)
        + SymExpr.build({i: 1}).negate()
    )
    # p >= 0
    sys_.add(SymExpr.build({p: 1}))
    return symbolic_scan(sys_, [p, i])
