"""Whole programs: loop nests + arrays + symbolic parameters."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from ..polyhedra import LinExpr, System
from .arrays import Access, Array
from .loops import Loop, Node, Statement


@dataclass
class Program:
    """A program in the paper's domain (Section 4.1).

    ``body`` is a sequence of loops/statements; ``params`` are the
    symbolic constants; ``assumptions`` constrain the parameters (e.g.
    ``N >= 1``) and flow into every analysis as context.
    """

    name: str
    body: List[Node]
    params: Tuple[str, ...] = ()
    assumptions: System = field(default_factory=System)
    arrays: Dict[str, Array] = field(default_factory=dict)

    def __post_init__(self):
        self.finalize()

    # -- structural bookkeeping -------------------------------------------

    def finalize(self) -> None:
        """Recompute statement loop chains, paths and the array table."""
        self.arrays = {}
        seen_vars: List[str] = []
        counter = [0]

        def walk(nodes: Sequence[Node], loops: Tuple[Loop, ...], path: Tuple[int, ...]):
            for idx, node in enumerate(nodes):
                if isinstance(node, Statement):
                    counter[0] += 1
                    if not node.name:
                        node.name = f"S{counter[0]}"
                    node.loops = loops
                    node.path = path + (idx,)
                    self._register_arrays(node)
                else:
                    if node.var in seen_vars:
                        raise ValueError(
                            f"duplicate loop variable {node.var!r}; loop "
                            "variables must be unique within a program"
                        )
                    seen_vars.append(node.var)
                    walk(node.body, loops + (node,), path + (idx,))

        walk(self.body, (), ())

    def _register_arrays(self, stmt: Statement) -> None:
        for access in [stmt.lhs, *stmt.reads]:
            known = self.arrays.get(access.array.name)
            if known is None:
                self.arrays[access.array.name] = access.array
            elif known is not access.array:
                raise ValueError(
                    f"two distinct Array objects named {access.array.name!r}"
                )

    # -- queries ---------------------------------------------------------------

    def statements(self) -> List[Statement]:
        out: List[Statement] = []

        def walk(nodes):
            for node in nodes:
                if isinstance(node, Statement):
                    out.append(node)
                else:
                    walk(node.body)

        walk(self.body)
        return out

    def statement(self, name: str) -> Statement:
        for stmt in self.statements():
            if stmt.name == name:
                return stmt
        raise KeyError(name)

    def writes_to(self, array: Array) -> List[Statement]:
        return [s for s in self.statements() if s.lhs.array is array]

    def loop_vars(self) -> List[str]:
        out: List[str] = []

        def walk(nodes):
            for node in nodes:
                if isinstance(node, Loop):
                    out.append(node.var)
                    walk(node.body)

        walk(self.body)
        return out

    def single_nest(self) -> Loop:
        """The unique top-level loop (most analyses work per-nest)."""
        loops = [n for n in self.body if isinstance(n, Loop)]
        if len(loops) != 1 or len(self.body) != 1:
            raise ValueError(f"program {self.name} is not a single loop nest")
        return loops[0]

    def pretty(self) -> str:
        lines: List[str] = []

        def walk(nodes, indent):
            for node in nodes:
                if isinstance(node, Statement):
                    lines.append("  " * indent + str(node))
                else:
                    lines.append(
                        "  " * indent
                        + f"for {node.var} = {node.lower} to {node.upper} do"
                    )
                    walk(node.body, indent + 1)

        walk(self.body, 0)
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.pretty()
