"""Sequential reference interpreter and dataflow oracle.

``run`` executes a program sequentially on dense numpy arrays -- the
semantics every generated SPMD program must reproduce.  ``run_traced``
additionally records, for every dynamic read instance, the write
instance that produced the value read.  That trace is exactly the
ground truth a Last Write Tree must predict, so tests can validate the
LWT analysis against observed execution on small parameter values.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

import numpy as np

from .arrays import Access
from .loops import Loop, Statement
from .program import Program


@dataclass(frozen=True)
class WriteInstance:
    """A dynamic write: statement name + iteration vector."""

    stmt: str
    iteration: Tuple[int, ...]


@dataclass(frozen=True)
class ReadInstance:
    """A dynamic read: statement, iteration, which read access, location."""

    stmt: str
    iteration: Tuple[int, ...]
    access_index: int
    location: Tuple[int, ...]


@dataclass
class Trace:
    """Observed last-write relation: read instance -> write instance or None."""

    last_writer: Dict[ReadInstance, Optional[WriteInstance]] = field(
        default_factory=dict
    )
    write_count: int = 0
    read_count: int = 0


def allocate_arrays(
    program: Program,
    params: Mapping[str, int],
    seed: int = 0,
) -> Dict[str, np.ndarray]:
    """Fresh arrays with reproducible pseudo-random initial contents.

    Initial contents are nontrivial so that dataflow mistakes (reading a
    stale or foreign value) change results detectably.
    """
    rng = np.random.default_rng(seed)
    arrays: Dict[str, np.ndarray] = {}
    for array in program.arrays.values():
        shape = array.shape(params)
        arrays[array.name] = rng.uniform(0.5, 2.0, size=shape)
    return arrays


def run(
    program: Program,
    params: Mapping[str, int],
    arrays: Optional[Dict[str, np.ndarray]] = None,
    seed: int = 0,
) -> Dict[str, np.ndarray]:
    """Execute sequentially; returns the (mutated) arrays."""
    if arrays is None:
        arrays = allocate_arrays(program, params, seed)
    env: Dict[str, int] = dict(params)

    def walk(nodes):
        for node in nodes:
            if isinstance(node, Statement):
                node.execute(arrays, env)
            else:
                low = node.lower.evaluate(env)
                high = node.upper.evaluate(env)
                for value in range(low, high + 1):
                    env[node.var] = value
                    walk(node.body)
                env.pop(node.var, None)

    walk(program.body)
    return arrays


def run_traced(
    program: Program,
    params: Mapping[str, int],
    arrays: Optional[Dict[str, np.ndarray]] = None,
    seed: int = 0,
) -> Tuple[Dict[str, np.ndarray], Trace]:
    """Execute sequentially while recording the exact last-write relation."""
    if arrays is None:
        arrays = allocate_arrays(program, params, seed)
    env: Dict[str, int] = dict(params)
    trace = Trace()
    writers: Dict[Tuple[str, Tuple[int, ...]], WriteInstance] = {}

    def walk(nodes):
        for node in nodes:
            if isinstance(node, Statement):
                iteration = tuple(env[v] for v in node.iter_vars)
                for ridx, access in enumerate(node.reads):
                    loc = access.evaluate(env)
                    key = (access.array.name, loc)
                    read = ReadInstance(node.name, iteration, ridx, loc)
                    trace.last_writer[read] = writers.get(key)
                    trace.read_count += 1
                node.execute(arrays, env)
                wloc = node.lhs.evaluate(env)
                writers[(node.lhs.array.name, wloc)] = WriteInstance(
                    node.name, iteration
                )
                trace.write_count += 1
            else:
                low = node.lower.evaluate(env)
                high = node.upper.evaluate(env)
                for value in range(low, high + 1):
                    env[node.var] = value
                    walk(node.body)
                env.pop(node.var, None)

    walk(program.body)
    return arrays, trace


def live_out_writes(
    program: Program, params: Mapping[str, int]
) -> Dict[Tuple[str, Tuple[int, ...]], WriteInstance]:
    """Which write instance owns each location at program exit.

    The ground truth for finalization (Section 4.4.3): locations never
    written do not appear in the result.
    """
    env: Dict[str, int] = dict(params)
    writers: Dict[Tuple[str, Tuple[int, ...]], WriteInstance] = {}

    def walk(nodes):
        for node in nodes:
            if isinstance(node, Statement):
                iteration = tuple(env[v] for v in node.iter_vars)
                wloc = node.lhs.evaluate(env)
                writers[(node.lhs.array.name, wloc)] = WriteInstance(
                    node.name, iteration
                )
            else:
                low = node.lower.evaluate(env)
                high = node.upper.evaluate(env)
                for value in range(low, high + 1):
                    env[node.var] = value
                    walk(node.body)
                env.pop(node.var, None)

    walk(program.body)
    return writers
