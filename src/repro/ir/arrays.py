"""Arrays and affine array accesses (paper Section 4.1).

An array has symbolic dimension sizes; an access maps an iteration vector
to array indices through affine functions of loop indices and symbolic
constants: ``f(i1..in) = (a1..am)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Tuple

from ..polyhedra import LinExpr, System


@dataclass(frozen=True)
class Array:
    """A dense array with affine (usually symbolic) dimension sizes.

    ``dims`` holds one LinExpr per dimension; the index set is
    ``0 <= a_k < dims[k]`` (Section 4.1's index-set definition).
    """

    name: str
    dims: Tuple[LinExpr, ...]

    def __post_init__(self):
        object.__setattr__(
            self, "dims", tuple(LinExpr.coerce(d) for d in self.dims)
        )

    @property
    def rank(self) -> int:
        return len(self.dims)

    def index_names(self, suffix: str = "") -> Tuple[str, ...]:
        """Canonical variable names for this array's index space."""
        return tuple(f"{self.name}${k}{suffix}" for k in range(self.rank))

    def index_domain(self, names: Tuple[str, ...]) -> System:
        """``0 <= names[k] <= dims[k] - 1`` as a System."""
        out = System()
        for name, dim in zip(names, self.dims):
            out.add_range(LinExpr.var(name), 0, dim - 1)
        return out

    def shape(self, params: Mapping[str, int]) -> Tuple[int, ...]:
        return tuple(d.evaluate(params) for d in self.dims)

    def __str__(self) -> str:
        dims = "][".join(str(d) for d in self.dims)
        return f"{self.name}[{dims}]"


@dataclass(frozen=True)
class Access:
    """An affine array access ``array[e1]...[em]``."""

    array: Array
    indices: Tuple[LinExpr, ...]

    def __post_init__(self):
        indices = tuple(LinExpr.coerce(e) for e in self.indices)
        if len(indices) != self.array.rank:
            raise ValueError(
                f"access to {self.array.name} has {len(indices)} subscripts,"
                f" array rank is {self.array.rank}"
            )
        object.__setattr__(self, "indices", indices)

    def evaluate(self, env: Mapping[str, int]) -> Tuple[int, ...]:
        return tuple(e.evaluate(env) for e in self.indices)

    def substitute(self, env) -> "Access":
        return Access(self.array, tuple(e.substitute(env) for e in self.indices))

    def rename(self, mapping) -> "Access":
        return Access(self.array, tuple(e.rename(mapping) for e in self.indices))

    def equate_to(self, names: Tuple[str, ...]) -> System:
        """``names[k] == indices[k]`` as a System (binds array-space vars)."""
        out = System()
        for name, expr in zip(names, self.indices):
            out.add_eq(LinExpr.var(name), expr)
        return out

    def variables(self) -> frozenset:
        out = frozenset()
        for expr in self.indices:
            out |= expr.variables()
        return out

    def is_uniform_with(self, other: "Access") -> bool:
        """Uniformly generated references [13]: same array, index functions
        differing only in the constant terms."""
        if self.array is not other.array:
            return False
        return all(
            (a - b).is_constant() for a, b in zip(self.indices, other.indices)
        )

    def __str__(self) -> str:
        subs = "][".join(str(e) for e in self.indices)
        return f"{self.array.name}[{subs}]"
