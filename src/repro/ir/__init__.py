"""Affine loop-nest intermediate representation.

Programs in the paper's domain (Section 4.1): loop nests with affine
bounds, statements with affine array accesses, symbolic parameters.
Includes the sequential reference interpreter that defines the
semantics every generated SPMD program must match, and a traced
variant that observes the exact last-write relation for validating
the dataflow analysis.
"""

from .arrays import Access, Array
from .interp import (
    ReadInstance,
    Trace,
    WriteInstance,
    allocate_arrays,
    live_out_writes,
    run,
    run_traced,
)
from .loops import Loop, Statement, common_loops, textually_before
from .program import Program

__all__ = [
    "Access",
    "Array",
    "Loop",
    "Program",
    "ReadInstance",
    "Statement",
    "Trace",
    "WriteInstance",
    "allocate_arrays",
    "common_loops",
    "live_out_writes",
    "run",
    "run_traced",
    "textually_before",
]
