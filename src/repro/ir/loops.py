"""Loop nests and statements (paper Section 4.1).

The program domain is a set of loop nests whose bounds are affine
expressions of outer loop indices and symbolic constants, containing
assignment statements whose array subscripts are affine too.  A
statement's right-hand side is an opaque scalar function of the values
it reads (the compiler never needs to understand the arithmetic, only
the access pattern -- exactly the paper's model).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, List, Mapping, Optional, Sequence, Tuple, Union

from ..polyhedra import LinExpr, System
from .arrays import Access, Array

_STMT_COUNTER = itertools.count(1)


@dataclass
class Statement:
    """An assignment ``lhs = fn(reads...)`` at some nesting depth.

    ``fn`` receives the read values (in ``reads`` order) and the integer
    environment of the enclosing loop variables and parameters; it
    returns the scalar to store.  ``guard_reads_lhs`` marks statements
    inside conditionals (Section 4.1): they are modeled as also reading
    the previous value of the lhs location.
    """

    lhs: Access
    reads: List[Access]
    fn: Callable
    name: str = ""
    text: str = ""
    guard_reads_lhs: bool = False

    # Filled in by Program.finalize():
    loops: Tuple["Loop", ...] = field(default_factory=tuple)
    path: Tuple[int, ...] = field(default_factory=tuple)

    #: vectorized-execution hook for the runtime's block path.  ``None``
    #: (the default) lets the runtime probe ``fn`` once on a small numpy
    #: block and cache the verdict here; ``True`` asserts ``fn`` maps
    #: elementwise over numpy arrays, ``False`` pins the scalar loop,
    #: and a callable supplies a dedicated vector implementation with
    #: the same ``(values, env)`` signature.
    vector_fn: Union[None, bool, Callable] = None

    #: picklable recipe for rebuilding ``fn`` (the parser's RHS AST; see
    #: :func:`repro.lang.parser.compile_fn_spec`).  ``fn`` itself is a
    #: closure and cannot be pickled; statements with an ``fn_spec``
    #: round-trip through the compile cache and batch workers, ones
    #: built directly from Python callables do not.
    fn_spec: Optional[tuple] = None

    def __post_init__(self):
        # unnamed statements get "S<k>" when the owning Program finalizes
        if self.guard_reads_lhs and self.lhs not in self.reads:
            self.reads = list(self.reads) + [self.lhs]

    @property
    def depth(self) -> int:
        return len(self.loops)

    @property
    def iter_vars(self) -> Tuple[str, ...]:
        return tuple(loop.var for loop in self.loops)

    def domain(self) -> System:
        """The iteration set of the statement as a System."""
        out = System()
        for loop in self.loops:
            out.add_range(LinExpr.var(loop.var), loop.lower, loop.upper)
        return out

    def domain_renamed(self, suffix: str) -> Tuple[System, Tuple[str, ...]]:
        """Domain with iteration variables suffixed (for multi-space systems)."""
        mapping = {v: v + suffix for v in self.iter_vars}
        return self.domain().rename(mapping), tuple(
            v + suffix for v in self.iter_vars
        )

    def execute(self, arrays: Mapping[str, "np.ndarray"], env: Mapping[str, int]):
        values = [arrays[a.array.name][a.evaluate(env)] for a in self.reads]
        arrays[self.lhs.array.name][self.lhs.evaluate(env)] = self.fn(values, env)

    def __str__(self) -> str:
        if self.text:
            return self.text
        reads = ", ".join(str(r) for r in self.reads)
        return f"{self.lhs} = fn({reads})"

    def __hash__(self):
        return id(self)

    def __eq__(self, other):
        return self is other

    # -- pickling ---------------------------------------------------------
    # ``fn`` is a closure; the AST recipe in ``fn_spec`` stands in for it
    # on the wire and is recompiled on load.  A probed ``vector_fn``
    # callable is likewise dropped (the runtime re-probes lazily).

    def __getstate__(self):
        state = self.__dict__.copy()
        if state.get("fn_spec") is not None:
            state["fn"] = None
        if callable(state.get("vector_fn")):
            state["vector_fn"] = None
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        if self.fn is None and self.fn_spec is not None:
            from ..lang.parser import compile_fn_spec  # cycle: lazy

            self.fn = compile_fn_spec(self.fn_spec)


@dataclass
class Loop:
    """``for var = lower to upper do body`` (inclusive bounds, step 1)."""

    var: str
    lower: LinExpr
    upper: LinExpr
    body: List[Union["Loop", Statement]] = field(default_factory=list)

    def __post_init__(self):
        self.lower = LinExpr.coerce(self.lower)
        self.upper = LinExpr.coerce(self.upper)

    def statements(self):
        for child in self.body:
            if isinstance(child, Statement):
                yield child
            else:
                yield from child.statements()

    def __str__(self) -> str:
        return f"for {self.var} = {self.lower} to {self.upper}"

    def __hash__(self):
        return id(self)

    def __eq__(self, other):
        return self is other


Node = Union[Loop, Statement]


def common_loops(s1: Statement, s2: Statement) -> int:
    """Number of loops enclosing both statements (identical loop objects)."""
    count = 0
    for l1, l2 in zip(s1.loops, s2.loops):
        if l1 is not l2:
            break
        count += 1
    return count


def textually_before(s1: Statement, s2: Statement) -> bool:
    """Does s1 appear before s2 in the program text?

    Statements are compared by their body-index paths from the root;
    the statement whose path is lexicographically smaller comes first.
    """
    if s1 is s2:
        return False
    return s1.path < s2.path
