"""repro: a reproduction of Amarasinghe & Lam, "Communication Optimization
and Code Generation for Distributed Memory Machines" (PLDI 1993).

Given an affine loop-nest program, a computation decomposition, and
initial/final data decompositions, this package generates an optimized
SPMD node program with explicit sends and receives, and can execute it
on a deterministic distributed-memory machine simulator.

See ``examples/quickstart.py`` for the full walk-through.
"""

__version__ = "1.0.0"

from . import baselines, codegen, core, dataflow, decomp, ir, lang, polyhedra, runtime
from .codegen import SPMD, SPMDOptions, generate_spmd
from .core import (
    communication_report,
    compile_distributed,
    compile_owner_computes,
)
from .dataflow import last_write_tree
from .decomp import ProcSpace, block, block_loop, cyclic, onto, owner_computes, replicated
from .lang import parse
from .runtime import (
    CheckpointPolicy,
    CostModel,
    CrashError,
    DeadlockError,
    FaultPlan,
    Machine,
    TraceBuffer,
    TraceEvent,
    TransportError,
    check_against_sequential,
    run_spmd,
)

__all__ = [
    "CheckpointPolicy",
    "CostModel",
    "CrashError",
    "DeadlockError",
    "FaultPlan",
    "Machine",
    "TraceBuffer",
    "TraceEvent",
    "TransportError",
    "ProcSpace",
    "SPMD",
    "SPMDOptions",
    "baselines",
    "block",
    "block_loop",
    "check_against_sequential",
    "codegen",
    "communication_report",
    "compile_distributed",
    "compile_owner_computes",
    "core",
    "cyclic",
    "dataflow",
    "decomp",
    "generate_spmd",
    "ir",
    "lang",
    "last_write_tree",
    "onto",
    "owner_computes",
    "parse",
    "polyhedra",
    "replicated",
    "run_spmd",
    "runtime",
]
