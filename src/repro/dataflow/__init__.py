"""Dataflow analyses: classic dependence (baseline) and Last Write Trees."""

from .finalize import final_write_tree
from .dependence import (
    LOOP_INDEPENDENT,
    Dependence,
    all_dependences,
    dependences_between,
    max_flow_dependence_level,
    parallelizable_levels,
)
from .lwt import (
    WRITE_SUFFIX,
    LastWriteTree,
    LWTLeaf,
    all_trees,
    last_write_tree,
)

__all__ = [
    "Dependence",
    "LOOP_INDEPENDENT",
    "LWTLeaf",
    "LastWriteTree",
    "WRITE_SUFFIX",
    "all_dependences",
    "all_trees",
    "dependences_between",
    "final_write_tree",
    "last_write_tree",
    "max_flow_dependence_level",
    "parallelizable_levels",
]
