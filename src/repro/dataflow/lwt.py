"""Last Write Trees: exact array dataflow analysis (paper Section 3, 4.4.2).

For a read access, the LWT maps every dynamic read instance to the
write instance that produced the value read (or to ``bottom`` when the
value was defined outside the analyzed code).  Leaves partition the
read iteration space into contexts; within one leaf every read shares
the same last-write relation and the same dependence level -- the
uniformity that drives all the communication optimizations of
Section 6.

Construction searches write candidates in execution-precedence order
(deepest shared loop level first), solves a parametric lexicographic
maximization per candidate, and peels each candidate's region off the
remaining read domain with exact polyhedral subtraction.  Candidates at
the same level from different writers are disambiguated by case-split
comparison of their write instances.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..ir import (
    Access,
    Program,
    Statement,
    common_loops,
    textually_before,
)
from ..polyhedra import (
    InfeasibleError,
    LexPiece,
    LinExpr,
    System,
    integer_feasible,
    parametric_lexmax,
    subtract_piece,
)

WRITE_SUFFIX = "$w"


@dataclass
class LWTLeaf:
    """One leaf: a context of read instances sharing a last-write relation.

    ``writer is None`` marks a bottom leaf (values defined outside the
    loop nest).  ``mapping`` gives each writer iteration variable as a
    quasi-affine function of the read iteration variables (auxiliary
    floor variables, listed in ``aux_vars``, are defined by sandwich
    constraints inside ``context``).  ``level`` is the dependence level:
    0 for bottom, k >= 1 for a dependence carried by loop k, and
    ``depth + 1``-style ``common + 1`` for loop-independent relations
    (``loop_independent`` is set in that case).
    """

    context: System
    writer: Optional[Statement]
    mapping: Dict[str, LinExpr] = field(default_factory=dict)
    level: int = 0
    loop_independent: bool = False
    aux_vars: Tuple[str, ...] = ()

    def is_bottom(self) -> bool:
        return self.writer is None

    def writer_iteration(self, read_env: Dict[str, int]) -> Tuple[int, ...]:
        """Evaluate the last-write iteration for a concrete read instance."""
        env = dict(read_env)
        _solve_aux_values(self.context, self.aux_vars, env)
        return tuple(
            self.mapping[v].evaluate(env) for v in self.writer.iter_vars
        )

    def describe(self) -> str:
        if self.is_bottom():
            return f"bottom when {self.context}"
        maps = ", ".join(
            f"{v}w = {self.mapping[v]}" for v in self.writer.iter_vars
        )
        kind = "indep" if self.loop_independent else f"level {self.level}"
        return f"{self.writer.name}[{maps}] ({kind}) when {self.context}"


@dataclass
class LastWriteTree:
    """The full tree for one read access: disjoint leaves covering the
    read domain (intersected with the program assumptions)."""

    stmt: Statement
    access: Access
    leaves: List[LWTLeaf]
    extra_vars: Tuple[str, ...] = ()

    def writer_leaves(self) -> List[LWTLeaf]:
        return [leaf for leaf in self.leaves if not leaf.is_bottom()]

    def bottom_leaves(self) -> List[LWTLeaf]:
        return [leaf for leaf in self.leaves if leaf.is_bottom()]

    def lookup(self, read_env: Dict[str, int]) -> Optional[LWTLeaf]:
        """The unique leaf containing a concrete read instance."""
        hits = []
        for leaf in self.leaves:
            env = dict(read_env)
            if _solve_aux_values(leaf.context, leaf.aux_vars, env):
                if leaf.context.satisfies(env):
                    hits.append(leaf)
        if len(hits) > 1:
            raise AssertionError(
                f"LWT leaves overlap at {read_env}: "
                + "; ".join(l.describe() for l in hits)
            )
        return hits[0] if hits else None

    def describe(self) -> str:
        head = f"LWT for {self.access} in {self.stmt.name}"
        return "\n".join([head] + ["  " + l.describe() for l in self.leaves])


def _solve_aux_values(
    context: System, aux_vars: Sequence[str], env: Dict[str, int]
) -> bool:
    """Fill in auxiliary floor variables from their sandwich constraints.

    Returns False if some auxiliary cannot be determined from ``env``.
    Auxiliaries may chain (later ones defined in terms of earlier ones),
    so iterate to a fixed point.
    """
    pending = [q for q in aux_vars if q not in env]
    progress = True
    while pending and progress:
        progress = False
        for q in list(pending):
            value = _aux_from_sandwich(context, q, env)
            if value is not None:
                env[q] = value
                pending.remove(q)
                progress = True
    return not pending


def _aux_from_sandwich(context: System, q: str, env: Dict[str, int]):
    # An equality b*q + rest == 0 determines q directly; if the division
    # is inexact we still return the floor -- the equality then fails the
    # subsequent satisfies() check, correctly rejecting the leaf.
    for eq in context.equalities:
        coeff = eq.coeff(q)
        if coeff == 0:
            continue
        rest = eq - LinExpr.var(q, coeff)
        if set(rest.variables()) <= set(env):
            value = -rest.evaluate(env)
            return value // coeff if coeff > 0 else (-value) // (-coeff)
    # Otherwise find a genuine sandwich pair:
    #   g - b*q >= 0   and   b*q + b - 1 - g >= 0   =>  q = floor(g/b)
    for ineq in context.inequalities:
        coeff = ineq.coeff(q)
        if coeff >= 0:
            continue
        b = -coeff
        g = ineq + LinExpr.var(q, b)  # ineq = g - b*q
        complement = (LinExpr.var(q, b) + b - 1 - g).normalized_ineq()
        if complement not in context.inequalities:
            continue
        if set(g.variables()) <= set(env):
            return g.evaluate(env) // b
    return None


# ---------------------------------------------------------------------------
# Candidate generation
# ---------------------------------------------------------------------------

@dataclass
class _Candidate:
    writer: Statement
    carried_level: Optional[int]  # None => loop-independent
    shared: int

    def sort_key(self):
        carried_rank = 0 if self.carried_level is not None else 1
        # later textual position wins among loop-independent candidates
        path_key = tuple(-p for p in self.writer.path)
        return (-self.shared, carried_rank, path_key)


def _candidates(program: Program, stmt: Statement, array) -> List[_Candidate]:
    out: List[_Candidate] = []
    for writer in program.writes_to(array):
        common = common_loops(writer, stmt)
        if textually_before(writer, stmt):
            out.append(_Candidate(writer, None, common))
        for level in range(common, 0, -1):
            out.append(_Candidate(writer, level, level - 1))
    out.sort(key=_Candidate.sort_key)
    return out


def _candidate_system(
    program: Program,
    stmt: Statement,
    access: Access,
    cand: _Candidate,
    read_domain: System,
) -> Optional[System]:
    writer = cand.writer
    w_domain, _w_vars = writer.domain_renamed(WRITE_SUFFIX)
    system = read_domain.intersect(w_domain)
    w_lhs = writer.lhs.rename(
        {v: v + WRITE_SUFFIX for v in writer.iter_vars}
    )
    try:
        for w_expr, r_expr in zip(w_lhs.indices, access.indices):
            system.add_eq(w_expr, r_expr)
        if cand.carried_level is not None:
            k = cand.carried_level
            for j in range(k - 1):
                v = writer.iter_vars[j]
                system.add_eq(LinExpr.var(v + WRITE_SUFFIX), LinExpr.var(v))
            v = writer.iter_vars[k - 1]
            system.add_lt(LinExpr.var(v + WRITE_SUFFIX), LinExpr.var(v))
        else:
            for j in range(cand.shared):
                v = writer.iter_vars[j]
                system.add_eq(LinExpr.var(v + WRITE_SUFFIX), LinExpr.var(v))
    except InfeasibleError:
        return None
    return system


# ---------------------------------------------------------------------------
# Same-level disambiguation
# ---------------------------------------------------------------------------

def _second_wins_tie(c1: _Candidate, c2: _Candidate) -> bool:
    """When two write instances coincide on all shared loop indices,
    which statement's instance executes later?  Static textual order at
    the divergence point decides."""
    return c2.writer.path > c1.writer.path


def _compare_split(
    overlap: System,
    entry1: Tuple[_Candidate, LexPiece],
    entry2: Tuple[_Candidate, LexPiece],
) -> List[Tuple[System, int]]:
    """Case-split the pair's overlap by which write instance is later.

    Both candidates share loops ``1..shared`` with the reader and loops
    ``1..cw`` with each other; compare index values position by position
    from ``shared`` (0-based) to ``cw - 1``, then break full ties by
    textual order at the divergence point.  Returns (extra-constraints,
    winner-index) pairs; each extra-constraints System is conjunctive
    and, intersected with the overlap, carves a disjoint winner region.
    """
    c1, piece1 = entry1
    c2, piece2 = entry2
    cw = common_loops(c1.writer, c2.writer)
    out: List[Tuple[System, int]] = []
    prefix = System()
    for j in range(c1.shared, cw):
        v = c1.writer.iter_vars[j]
        u1 = piece1.mapping[v + WRITE_SUFFIX]
        u2 = piece2.mapping[v + WRITE_SUFFIX]
        diff = u1 - u2
        if diff.is_zero():
            continue
        for expr, winner in ((diff - 1, 0), (-diff - 1, 1)):
            try:
                conds = prefix.copy()
                conds.add_inequality(expr)
            except InfeasibleError:
                continue
            if integer_feasible(overlap.intersect(conds)):
                out.append((conds, winner))
        nxt = prefix.copy()
        try:
            nxt.add_equality(diff)
        except InfeasibleError:
            return out
        prefix = nxt
    if integer_feasible(overlap.intersect(prefix)):
        out.append((prefix, 1 if _second_wins_tie(c1, c2) else 0))
    return out


def _merge_group(
    entries: List[Tuple[_Candidate, LexPiece]]
) -> List[Tuple[_Candidate, LexPiece]]:
    """Resolve same-level races between different writers.

    For every overlapping pair of pieces, emit explicit winner entries
    covering the overlap (conjunctive contexts from the case split).
    These go *first*; the tree driver processes entries in order and
    peels claimed regions off the remaining domain, so the original
    (unrestricted) pieces afterwards only claim what is left -- their
    non-overlapping parts.
    """
    distinct = {id(c.writer) for c, _ in entries}
    if len(distinct) <= 1 or len(entries) == 1:
        return entries
    split_entries: List[Tuple[_Candidate, LexPiece]] = []
    overlapping_pairs = 0
    for i in range(len(entries)):
        for j in range(i + 1, len(entries)):
            c1, p1 = entries[i]
            c2, p2 = entries[j]
            if c1.writer is c2.writer:
                continue
            overlap = p1.full_context().intersect(p2.full_context())
            if not integer_feasible(overlap):
                continue
            overlapping_pairs += 1
            for conds, winner in _compare_split(overlap, (c1, p1), (c2, p2)):
                cand, piece = entries[i] if winner == 0 else entries[j]
                merged_conditions = (
                    p1.conditions.intersect(p2.conditions).intersect(conds)
                )
                merged_defs = p1.aux_defs.intersect(p2.aux_defs)
                merged_aux = tuple(
                    dict.fromkeys(p1.aux_vars + p2.aux_vars)
                )
                split_entries.append(
                    (
                        cand,
                        LexPiece(
                            merged_conditions,
                            piece.mapping,
                            merged_defs,
                            merged_aux,
                        ),
                    )
                )
    if overlapping_pairs and len(distinct) > 2:
        raise NotImplementedError(
            "three or more writers racing at the same dependence level"
        )
    return split_entries + entries


# ---------------------------------------------------------------------------
# Tree construction
# ---------------------------------------------------------------------------

def last_write_tree(
    program: Program,
    stmt: Statement,
    access: Access,
    extra_domain: Optional[System] = None,
    extra_vars: Tuple[str, ...] = (),
) -> LastWriteTree:
    """Build the LWT for one read access of ``stmt``.

    ``extra_domain``/``extra_vars`` support the convex-hull treatment of
    uniformly generated reference sets (Section 6.1.2): pass the offset
    variable(s) and their range to analyze a whole reference family with
    one tree.
    """
    read_domain = stmt.domain().intersect(program.assumptions)
    if extra_domain is not None:
        read_domain = read_domain.intersect(extra_domain)

    remaining: List[System] = [read_domain]
    leaves: List[LWTLeaf] = []
    seen_aux: List[str] = []  # aux vars folded into remaining regions

    cands = _candidates(program, stmt, access.array)
    idx = 0
    while idx < len(cands) and remaining:
        group = [cands[idx]]
        idx += 1
        while (
            idx < len(cands)
            and cands[idx].sort_key()[:2] == group[0].sort_key()[:2]
        ):
            group.append(cands[idx])
            idx += 1

        entries: List[Tuple[_Candidate, LexPiece]] = []
        for cand in group:
            system = _candidate_system(
                program, stmt, access, cand, read_domain
            )
            if system is None:
                continue
            opt_vars = [
                v + WRITE_SUFFIX for v in cand.writer.iter_vars
            ]
            pieces = parametric_lexmax(
                system, opt_vars, context=read_domain
            )
            entries.extend((cand, piece) for piece in pieces)
        if len({id(c.writer) for c, _ in entries}) > 1:
            entries = _merge_group(entries)

        for cand, piece in entries:
            touched: List[System] = []
            untouched: List[System] = []
            for region in remaining:
                try:
                    ctx = region.intersect(piece.full_context())
                except InfeasibleError:
                    untouched.append(region)
                    continue
                if not integer_feasible(ctx):
                    untouched.append(region)
                    continue
                touched.append(region)
                mapping = {
                    v: piece.mapping[v + WRITE_SUFFIX]
                    for v in cand.writer.iter_vars
                }
                if cand.carried_level is not None:
                    level = cand.carried_level
                    indep = False
                else:
                    level = cand.shared + 1
                    indep = True
                ctx_vars = ctx.variables()
                aux = tuple(
                    q
                    for q in list(piece.aux_vars) + seen_aux
                    if q in ctx_vars
                )
                leaves.append(
                    LWTLeaf(
                        context=ctx,
                        writer=cand.writer,
                        mapping=mapping,
                        level=level,
                        loop_independent=indep,
                        aux_vars=aux,
                    )
                )
            residues = subtract_piece(touched, piece)
            remaining = untouched + [
                r for r in residues if integer_feasible(r)
            ]
            if touched:
                for q in piece.aux_vars:
                    if q not in seen_aux:
                        seen_aux.append(q)

    for region in remaining:
        region_vars = region.variables()
        aux = tuple(q for q in seen_aux if q in region_vars)
        leaves.append(
            LWTLeaf(context=region, writer=None, level=0, aux_vars=aux)
        )

    return LastWriteTree(stmt, access, leaves, extra_vars)


def all_trees(program: Program) -> Dict[Tuple[str, int], LastWriteTree]:
    """LWTs for every read access of every statement, keyed by
    (statement name, read index)."""
    out: Dict[Tuple[str, int], LastWriteTree] = {}
    for stmt in program.statements():
        for ridx, access in enumerate(stmt.reads):
            out[(stmt.name, ridx)] = last_write_tree(program, stmt, access)
    return out
