"""Classic data dependence analysis (the baseline the paper argues against).

Section 2 of the paper reviews the location-centric approach: two
accesses are data dependent if one writes and they may touch the same
location; the dependence is carried at level k if the coinciding
instances share the first k-1 loop iterations but not the kth.  We test
each (pair, level) with the exact Omega feasibility test, so this
baseline is as strong as dependence analysis can be -- the paper's
point is that even *exact* location-based information is weaker than
value-based information.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..ir import Access, Program, Statement, common_loops, textually_before
from ..polyhedra import InfeasibleError, LinExpr, System, integer_feasible

LOOP_INDEPENDENT = -1  # sentinel level for loop-independent dependences


@dataclass(frozen=True)
class Dependence:
    """A data dependence carried at ``level`` (1-based loop level).

    ``level == LOOP_INDEPENDENT`` marks a loop-independent dependence
    (same iteration of every common loop, source textually earlier).
    """

    source: Statement
    sink: Statement
    kind: str  # "flow", "anti", or "output"
    level: int

    def __str__(self) -> str:
        lvl = "indep" if self.level == LOOP_INDEPENDENT else str(self.level)
        return f"{self.kind}: {self.source.name} -> {self.sink.name} @ {lvl}"


def _pair_system(
    src: Statement,
    src_access: Access,
    dst: Statement,
    dst_access: Access,
    level: int,
    assumptions: System,
) -> Optional[System]:
    """System whose feasibility means: some src instance and dst instance
    touch the same location, with src preceding dst at ``level``."""
    src_domain, src_vars = src.domain_renamed("$s")
    system = src_domain.intersect(dst.domain()).intersect(assumptions)
    src_idx = [e.rename({v: v + "$s" for v in src.iter_vars})
               for e in src_access.indices]
    try:
        for s_expr, d_expr in zip(src_idx, dst_access.indices):
            system.add_eq(s_expr, d_expr)
        common = common_loops(src, dst)
        if level == LOOP_INDEPENDENT:
            if not textually_before(src, dst):
                return None
            for j in range(common):
                var = src.iter_vars[j]
                system.add_eq(LinExpr.var(var + "$s"), LinExpr.var(var))
        else:
            if level > common:
                return None
            for j in range(level - 1):
                var = src.iter_vars[j]
                system.add_eq(LinExpr.var(var + "$s"), LinExpr.var(var))
            var = src.iter_vars[level - 1]
            system.add_lt(LinExpr.var(var + "$s"), LinExpr.var(var))
    except InfeasibleError:
        return None
    return system


def dependences_between(
    src: Statement,
    dst: Statement,
    assumptions: System,
) -> List[Dependence]:
    """All dependences from instances of src to later instances of dst."""
    out: List[Dependence] = []
    pairs = []
    # flow: src writes, dst reads
    for read in dst.reads:
        if read.array is src.lhs.array:
            pairs.append(("flow", src.lhs, read))
    # anti: src reads, dst writes
    for read in src.reads:
        if read.array is dst.lhs.array:
            pairs.append(("anti", read, dst.lhs))
    # output: both write
    if src.lhs.array is dst.lhs.array:
        pairs.append(("output", src.lhs, dst.lhs))

    common = common_loops(src, dst)
    levels = list(range(1, common + 1)) + [LOOP_INDEPENDENT]
    seen = set()
    for kind, src_access, dst_access in pairs:
        for level in levels:
            if (kind, level) in seen:
                continue
            system = _pair_system(
                src, src_access, dst, dst_access, level, assumptions
            )
            if system is not None and integer_feasible(system):
                seen.add((kind, level))
                out.append(Dependence(src, dst, kind, level))
    return out


def all_dependences(program: Program) -> List[Dependence]:
    """Every dependence between every (ordered) pair of statements."""
    out: List[Dependence] = []
    stmts = program.statements()
    for src in stmts:
        for dst in stmts:
            out.extend(dependences_between(src, dst, program.assumptions))
    return out


def max_flow_dependence_level(
    program: Program, read_stmt: Statement, read_access: Access
) -> int:
    """The deepest loop level carrying a flow dependence into this read.

    This is the quantity the location-centric compiler uses to place
    communication (Section 2.1): messages must be exchanged once per
    iteration of the level-``k`` loop.  Returns 0 when no write in the
    program reaches the read (communication can be hoisted out of the
    nest entirely).
    """
    deepest = 0
    for writer in program.writes_to(read_access.array):
        common = common_loops(writer, read_stmt)
        for level in range(common, 0, -1):
            if level <= deepest:
                break
            system = _pair_system(
                writer, writer.lhs, read_stmt, read_access, level,
                program.assumptions,
            )
            if system is not None and integer_feasible(system):
                deepest = max(deepest, level)
                break
        if textually_before(writer, read_stmt) or writer is read_stmt:
            system = _pair_system(
                writer, writer.lhs, read_stmt, read_access,
                LOOP_INDEPENDENT, program.assumptions,
            )
            if system is not None and integer_feasible(system):
                deepest = max(deepest, common_loops(writer, read_stmt))
    return deepest


def parallelizable_levels(program: Program) -> List[int]:
    """Loop levels (of the unique nest) carrying no dependence at all.

    The classic test: a loop can run its iterations in parallel iff no
    dependence is carried at its level.  Used by examples to show how
    location-based analysis serializes loops that value-based analysis
    (plus privatization) can parallelize (Section 2.2.2).
    """
    nest_vars = program.loop_vars()
    carried = {d.level for d in all_dependences(program)
               if d.level != LOOP_INDEPENDENT}
    return [lvl for lvl in range(1, len(nest_vars) + 1) if lvl not in carried]
