"""Live-out analysis for finalization (paper Section 4.4.3).

"Data produced within the loop nest may need to be written back to
their home locations in the final data layout.  The problem of
identifying which written values are live at exit is a sub-problem in
calculating last write trees."

We reuse the Last Write Tree machinery verbatim: a synthetic read of
``A[a0]...[am-1]`` placed textually after the whole program sees, as
its last writer, exactly the write instance whose value is live at
exit.  Bottom leaves are locations never written (they stay wherever
the initial layout put them).
"""

from __future__ import annotations

from typing import Tuple

from ..ir import Access, Array, Program, Statement
from ..polyhedra import LinExpr, System
from .lwt import LastWriteTree, last_write_tree


def _exit_probe(array: Array) -> Tuple[Statement, Access, System]:
    """A zero-depth statement reading every element of ``array``.

    The probe's iteration space is the array's index space (variables
    ``a0..``); its textual position is after everything.
    """
    names = tuple(f"a{k}" for k in range(array.rank))
    access = Access(array, tuple(LinExpr.var(n) for n in names))
    probe = Statement(
        lhs=access,
        reads=[access],
        fn=lambda values, env: values[0],
        name=f"$exit:{array.name}",
        text=f"<live-out probe for {array.name}>",
    )
    probe.loops = ()
    probe.path = (10**9,)  # after every real statement
    domain = array.index_domain(names)
    return probe, access, domain


def final_write_tree(program: Program, array: Array) -> LastWriteTree:
    """For each array element: the write instance live at program exit.

    Leaves are contexts over the array index variables ``a0..am-1``;
    writer leaves map to the last write instance of the location,
    bottom leaves cover never-written elements.
    """
    probe, access, domain = _exit_probe(array)
    return last_write_tree(
        program,
        probe,
        access,
        extra_domain=domain,
        extra_vars=tuple(f"a{k}" for k in range(array.rank)),
    )
