"""Command-line driver: compile, inspect and simulate programs.

Usage::

    python -m repro analyze  program.loop            # LWTs + dependence info
    python -m repro compile  program.loop --block i=32
    python -m repro run      program.loop --block i=32 -D N=70 -D T=2 -D P=3

Programs are written in the paper's pseudo-language (see
``repro.lang``); the ``--block`` option distributes the named loop(s)
of every statement in blocks across the processors.
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, List

from . import (
    CheckpointPolicy,
    CrashError,
    DeadlockError,
    FaultPlan,
    TransportError,
    block_loop,
    check_against_sequential,
    generate_spmd,
    last_write_tree,
    parse,
)
from .codegen import SPMDOptions
from .core import communication_report, compile_distributed
from .dataflow import all_dependences
from .polyhedra import stats as poly_stats


def _load(path: str):
    with open(path) as fh:
        return parse(fh.read(), name=path)


def _parse_defs(defs: List[str]) -> Dict[str, int]:
    out: Dict[str, int] = {}
    for item in defs or []:
        name, _, value = item.partition("=")
        out[name] = int(value)
    return out


def _build_comps(program, blocks: List[str]):
    """--block i=32 [j=8 ...]: block-distribute those loops everywhere."""
    specs = []
    for item in blocks or []:
        name, _, size = item.partition("=")
        specs.append((name, int(size)))
    if not specs:
        raise SystemExit("--block LOOPVAR=SIZE is required for this command")
    comps = {}
    space = None
    for stmt in program.statements():
        vars_ = [v for v, _s in specs if v in stmt.iter_vars]
        sizes = [s for v, s in specs if v in stmt.iter_vars]
        if len(vars_) != len(specs):
            raise SystemExit(
                f"statement {stmt.name} lacks blocked loop(s) "
                f"{[v for v, _ in specs]}"
            )
        comp = block_loop(stmt, vars_, sizes, space=space)
        space = comp.space
        comps[stmt.name] = comp
    return comps


def cmd_analyze(args) -> int:
    program = _load(args.program)
    print("== program ==")
    print(program.pretty())
    print("\n== data dependences (location-centric view) ==")
    for dep in all_dependences(program):
        print(" ", dep)
    print("\n== last write trees (value-centric view) ==")
    for stmt in program.statements():
        for access in stmt.reads:
            tree = last_write_tree(program, stmt, access)
            print(tree.describe())
            print()
    return 0


def cmd_compile(args) -> int:
    program = _load(args.program)
    comps = _build_comps(program, args.block)
    options = SPMDOptions(
        aggregate=not args.no_aggregate,
        multicast=not args.no_multicast,
    )
    result = compile_distributed(
        program, comps, options=options, cache_dir=args.cache_dir
    )
    if args.emit == "python":
        print(result.spmd.source)
    else:
        print(result.c_text)
    if args.poly_stats:
        print(poly_stats.summary(result.poly_stats), file=sys.stderr)
        print(
            f"  compile time:           {result.compile_seconds:.3f}s"
            f"{' (cached result)' if result.from_cache else ''}",
            file=sys.stderr,
        )
    if args.cache_dir:
        from .polyhedra import diskcache

        cache = diskcache.DiskCache(args.cache_dir)
        print(diskcache.summarize_cache(cache.stats()), file=sys.stderr)
    return 0


def cmd_cache(args) -> int:
    from .polyhedra import diskcache

    cache = diskcache.DiskCache(args.cache_dir, max_bytes=args.max_bytes)
    if args.action == "clear":
        removed = cache.clear()
        print(f"removed {removed} entries from {cache.path}")
        return 0
    info = cache.gc() if args.action == "gc" else cache.stats()
    print(f"cache at {info['path']}")
    print(f"  entries:     {info['entries']}")
    print(f"  bytes:       {info['bytes']} (cap {info['max_bytes']})")
    print(f"  fingerprint: {info['fingerprint']}")
    return 0


def cmd_serve(args) -> int:
    from .service import CompileServer, serve_stdio, serve_tcp

    server = CompileServer(
        cache_dir=args.cache_dir, max_bytes=args.cache_max_bytes
    )
    if args.port is None:
        return serve_stdio(server)
    return serve_tcp(
        server, args.host, args.port,
        announce=lambda port: print(
            f"repro serve: listening on {args.host}:{port}",
            file=sys.stderr, flush=True,
        ),
    )


def _rate(text: str) -> float:
    """argparse type for a probability flag: a float in [0, 1]."""
    value = float(text)
    if not 0.0 <= value <= 1.0:
        raise argparse.ArgumentTypeError(
            f"must be a probability in [0, 1], got {text}"
        )
    return value


def _nonneg_float(text: str) -> float:
    """argparse type for a duration/amount flag: a float >= 0."""
    value = float(text)
    if value < 0:
        raise argparse.ArgumentTypeError(f"must be >= 0, got {text}")
    return value


def _pos_float(text: str) -> float:
    """argparse type for an interval flag: a float > 0."""
    value = float(text)
    if value <= 0:
        raise argparse.ArgumentTypeError(f"must be > 0, got {text}")
    return value


def _nonneg_int(text: str) -> int:
    """argparse type for a count/budget flag: an int >= 0."""
    value = int(text)
    if value < 0:
        raise argparse.ArgumentTypeError(f"must be >= 0, got {text}")
    return value


def _pos_int(text: str) -> int:
    """argparse type for a cadence flag: an int >= 1."""
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {text}")
    return value


def _crash_spec(text: str):
    """argparse type for --crash-at: ``RANK@TIME`` or ``i,j@TIME``."""
    rank, sep, when = text.partition("@")
    if not sep:
        raise argparse.ArgumentTypeError(
            f"expected RANK@TIME (e.g. 0@5000 or 1,0@5000), got {text!r}"
        )
    try:
        coords = tuple(int(c) for c in rank.split(","))
        return coords, float(when)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected RANK@TIME with integer rank and numeric time, "
            f"got {text!r}"
        ) from None


def _corrupt_spec(text: str):
    """argparse type for --corrupt-at: ``SRC>DST:SEQ[@WORD]``."""
    head, sep, word = text.partition("@")
    src, arrow, rest = head.partition(">")
    dst, colon, seq = rest.partition(":")
    if not arrow or not colon:
        raise argparse.ArgumentTypeError(
            f"expected SRC>DST:SEQ[@WORD] (e.g. 0>1:3 or 0,1>2,0:5@7), "
            f"got {text!r}"
        )
    try:
        key = (
            tuple(int(c) for c in src.split(",")),
            tuple(int(c) for c in dst.split(",")),
            int(seq),
        )
        return key, (int(word) if sep else 0)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected SRC>DST:SEQ[@WORD] with integer coordinates, "
            f"got {text!r}"
        ) from None


def _ckpt_corrupt_spec(text: str):
    """argparse type for --checkpoint-corrupt-at: ``RANK@ORDINAL``."""
    rank, sep, ordinal = text.partition("@")
    if not sep:
        raise argparse.ArgumentTypeError(
            f"expected RANK@ORDINAL (e.g. 0@2 or 1,0@2), got {text!r}"
        )
    try:
        return tuple(int(c) for c in rank.split(",")), int(ordinal)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected RANK@ORDINAL with integer fields, got {text!r}"
        ) from None


def _build_fault_plan(args) -> FaultPlan | None:
    """CLI fault-injection flags -> a FaultPlan (None when no faults)."""
    rates = (args.drop_rate, args.dup_rate, args.reorder_rate,
             args.stall_rate, args.ack_drop_rate, args.crash_rate,
             args.corrupt_rate, args.checkpoint_corrupt_rate)
    schedules = (args.crash_at, args.corrupt_at,
                 args.checkpoint_corrupt_at)
    if not any(r for r in rates if r is not None) and not any(schedules):
        return None
    return FaultPlan(
        seed=args.fault_seed,
        drop_rate=args.drop_rate,
        dup_rate=args.dup_rate,
        reorder_rate=args.reorder_rate,
        max_delay=args.max_delay,
        ack_drop_rate=args.ack_drop_rate,
        stall_rate=args.stall_rate,
        stall_time=args.stall_time,
        crash_rate=args.crash_rate,
        crashes=dict(args.crash_at) if args.crash_at else None,
        corrupt_rate=args.corrupt_rate,
        corruptions=dict(args.corrupt_at) if args.corrupt_at else None,
        checkpoint_corrupt_rate=args.checkpoint_corrupt_rate,
        checkpoint_corruptions=(
            args.checkpoint_corrupt_at
            if args.checkpoint_corrupt_at else None
        ),
    )


def _build_checkpoint_policy(args) -> CheckpointPolicy | None:
    """CLI checkpoint flags -> a CheckpointPolicy (None when off)."""
    if args.checkpoint_interval is None and args.checkpoint_every_ops is None:
        return None
    return CheckpointPolicy(
        every_ops=args.checkpoint_every_ops,
        interval=args.checkpoint_interval,
    )


def cmd_run(args) -> int:
    program = _load(args.program)
    comps = _build_comps(program, args.block)
    options = SPMDOptions(
        vectorize=not args.no_vectorize,
        early_puts=args.early_puts,
    )
    spmd = generate_spmd(program, comps, options=options)
    params = _parse_defs(args.define)
    plan = _build_fault_plan(args)
    policy = _build_checkpoint_policy(args)
    if plan is not None:
        print(f"injecting faults: {plan.describe()}")
    want_trace = bool(args.trace or args.trace_summary)
    try:
        result = check_against_sequential(
            spmd,
            comps,
            params,
            fault_plan=plan,
            reliability=args.reliability,
            max_retries=args.max_retries,
            checkpoint=policy,
            max_restarts=args.max_restarts,
            backend=args.backend,
            trace=want_trace or None,
            checksums={"auto": None, "on": True, "off": False}[
                args.checksums
            ],
            recovery=args.recovery_mode,
            log_bytes_cap=args.log_bytes_cap,
        )
    except (CrashError, DeadlockError, TransportError) as exc:
        print(f"run FAILED: {type(exc).__name__}")
        print(exc)
        for note in getattr(exc, "__notes__", ()):
            print(f"  note: {note}")
        return 2
    print(f"validated against sequential execution: OK")
    print(f"messages:  {result.total_messages}")
    print(f"words:     {result.total_words}")
    print(f"makespan:  {result.makespan:.0f} time units")
    if result.wall_seconds > 0:
        line = (
            f"sim rate:  {result.sim_events} events in "
            f"{result.wall_seconds:.3f}s wall "
            f"({result.events_per_sec:,.0f} events/sec)"
        )
        if result.sched_wakeups is not None:
            nranks = max(1, len(result.clocks))
            line += (
                f", {result.sched_wakeups / nranks:.1f} wakeups/rank"
            )
        print(line)
    retrans = result.stat_sum("retransmissions")
    if plan is not None or retrans:
        print(
            f"reliability: {retrans:.0f} retransmissions, "
            f"{result.stat_sum('acks_lost'):.0f} acks lost, "
            f"{result.stat_sum('duplicates_dropped'):.0f} duplicates "
            f"dropped at receivers, "
            f"{result.stat_sum('timeout_time'):.0f} time units in "
            f"retransmission timeouts"
        )
    corrupted = result.stat_sum("corruptions_injected")
    if corrupted or result.stat_sum("corrupt_dropped") \
            or result.snapshots_rejected:
        print(
            f"integrity: {corrupted:.0f} corrupted copies injected, "
            f"{result.stat_sum('corrupt_dropped'):.0f} discarded by "
            f"checksum at receivers, "
            f"{result.snapshots_rejected} checkpoint snapshot(s) "
            f"rejected by digest"
        )
    if result.crash_events or result.checkpoints:
        print(
            f"resilience: {len(result.crash_events)} crash(es), "
            f"{result.restarts} {result.recovery_mode} restart(s), "
            f"{result.checkpoints} checkpoint(s) taken, "
            f"{result.recovery_time:.0f} time units spent recovering, "
            f"{result.work_wasted:.0f} time units of work discarded"
        )
        if result.log_bytes_peak:
            print(
                f"  sender message log peak: {result.log_bytes_peak} bytes"
            )
        for event in result.crash_events:
            print(f"  {event.describe()}")
    if args.trace and result.trace is not None:
        result.trace.write_chrome(args.trace)
        print(
            f"trace: {len(result.trace)} events written to {args.trace} "
            f"(Chrome trace_event JSON; open in https://ui.perfetto.dev)"
        )
    if args.trace_summary and result.trace is not None:
        from .runtime import summarize

        print(summarize(result))
    report = communication_report(
        spmd, {k: v for k, v in params.items() if not k.startswith("P")}
    )
    for label, counts in report.per_set.items():
        print(f"  {label}: {counts['transfers']} transfers "
              f"in {counts['messages']} messages")
    return 0


def cmd_chaos(args) -> int:
    import json
    import os

    from .runtime import chaos
    from .runtime import transport as _transport

    if args.replay:
        doc = chaos.load_reproducer(args.replay)
        reproduced, observed = chaos.replay_reproducer(doc)
        print(
            f"replaying {args.replay}: recorded {doc['observed']!r}, "
            f"observed {observed!r}"
        )
        if reproduced:
            print("reproduced: the recorded failure replays deterministically")
            return 0
        print("NOT reproduced: the replay diverged from the recording")
        return 1
    workloads = list(dict.fromkeys(args.workload or sorted(chaos.WORKLOADS)))
    backends = list(
        dict.fromkeys(args.backend or ["threads", "coop", "event"])
    )
    recovery_modes = (
        ("global", "local")
        if args.recovery_mode == "both"
        else (args.recovery_mode,)
    )
    transports = list(
        dict.fromkeys(args.transport or ["reliable", "onesided"])
    )
    saved = _transport._VERIFY_DISABLED
    if args.inject_bug:
        _transport._VERIFY_DISABLED = True
    try:
        report = chaos.explore(
            workloads=workloads,
            backends=backends,
            seeds=args.seeds,
            corrupt_rate=args.corrupt_rate,
            targeted=not args.no_targeted,
            vectorize=args.vectorize,
            shrink_budget=args.shrink_budget,
            recovery_modes=recovery_modes,
            crashes=not args.no_crashes,
            transports=transports,
            log=lambda msg: print(f"chaos: {msg}"),
        )
    finally:
        _transport._VERIFY_DISABLED = saved
    print(report.format())
    if args.out and report.findings:
        os.makedirs(args.out, exist_ok=True)
        for index, finding in enumerate(report.findings):
            path = os.path.join(
                args.out,
                f"chaos-{finding.scenario}-{finding.backend}-"
                f"{finding.transport}-{index}.json",
            )
            with open(path, "w") as fh:
                json.dump(finding.reproducer, fh, indent=2, sort_keys=True)
                fh.write("\n")
            print(f"  reproducer written to {path}")
    return 0 if report.ok else 3


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="PLDI'93 distributed-memory compiler reproduction",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_analyze = sub.add_parser("analyze", help="dependences + LWTs")
    p_analyze.add_argument("program")
    p_analyze.set_defaults(fn=cmd_analyze)

    p_compile = sub.add_parser("compile", help="generate SPMD code")
    p_compile.add_argument("program")
    p_compile.add_argument("--block", action="append", metavar="VAR=SIZE")
    p_compile.add_argument(
        "--emit", choices=["c", "python"], default="c"
    )
    p_compile.add_argument("--no-aggregate", action="store_true")
    p_compile.add_argument("--no-multicast", action="store_true")
    p_compile.add_argument(
        "--poly-stats", action="store_true",
        help="print polyhedral-engine work counters to stderr "
        "(FM pairs avoided, cache hit rates, codegen volume)",
    )
    p_compile.add_argument(
        "--cache-dir", metavar="DIR", default=None,
        help="persistent compile cache: FM projections, feasibility "
        "verdicts and whole results are stored content-addressed under "
        "DIR and reused across runs (default: no persistent cache)",
    )
    p_compile.set_defaults(fn=cmd_compile)

    p_cache = sub.add_parser(
        "cache", help="inspect or maintain a persistent compile cache"
    )
    p_cache.add_argument(
        "action", choices=["stats", "clear", "gc"],
        help="stats = occupancy and fingerprint; clear = drop every "
        "entry; gc = enforce the byte cap now (LRU eviction)",
    )
    p_cache.add_argument("--cache-dir", metavar="DIR", required=True)
    p_cache.add_argument(
        "--max-bytes", type=_pos_int, default=None, metavar="BYTES",
        help="byte cap used by gc (default 256 MiB)",
    )
    p_cache.set_defaults(fn=cmd_cache)

    p_serve = sub.add_parser(
        "serve",
        help="long-lived compile server (JSON lines on stdio or TCP)",
        description="Start a compile server that keeps every cache "
        "tier warm across requests.  Each request is one JSON object "
        "per line ({'program': SOURCE, 'blocks': {VAR: SIZE}, "
        "'options': {...}, 'emit': 'c'|'python'|'none'}), or a JSON "
        "array of such objects for a batch; control ops: ping, stats, "
        "shutdown.  Default transport is stdio; --port serves a local "
        "TCP socket instead (0 = ephemeral).",
    )
    p_serve.add_argument(
        "--cache-dir", metavar="DIR", default=None,
        help="share a persistent compile cache across server sessions",
    )
    p_serve.add_argument(
        "--cache-max-bytes", type=_pos_int, default=None, metavar="BYTES",
        help="persistent-cache byte cap (default 256 MiB)",
    )
    p_serve.add_argument(
        "--port", type=_nonneg_int, default=None, metavar="PORT",
        help="serve a TCP socket on --host instead of stdio "
        "(0 binds an ephemeral port, announced on stderr)",
    )
    p_serve.add_argument(
        "--host", default="127.0.0.1", metavar="HOST",
        help="TCP bind address (default 127.0.0.1)",
    )
    p_serve.set_defaults(fn=cmd_serve)

    p_run = sub.add_parser("run", help="simulate and validate")
    p_run.add_argument("program")
    p_run.add_argument("--block", action="append", metavar="VAR=SIZE")
    p_run.add_argument(
        "-D", "--define", action="append", metavar="NAME=VALUE",
        help="parameter values (N, T, P, ...)",
    )
    p_run.add_argument(
        "--backend", choices=["threads", "coop", "event"],
        default="threads",
        help="execution engine: threads = one OS thread per simulated "
        "processor (default), coop = all processors as coroutines on "
        "one thread in deterministic virtual-time order (faster; same "
        "results), event = discrete-event heap scheduler that only "
        "wakes runnable processors (fastest at large P; same results)",
    )
    p_run.add_argument(
        "--trace", metavar="FILE", default=None,
        help="record a typed event trace and write it as Chrome "
        "trace_event JSON (viewable in Perfetto / chrome://tracing)",
    )
    p_run.add_argument(
        "--trace-summary", action="store_true",
        help="record a trace and print its analyses: per-(sender, "
        "receiver) communication matrix, per-processor makespan "
        "decomposition, and the critical path",
    )
    p_run.add_argument(
        "--no-vectorize", action="store_true",
        help="disable vectorized node-program loops (compile innermost "
        "loops to scalar per-iteration calls, as before)",
    )
    p_run.add_argument(
        "--early-puts", action="store_true",
        help="lower aggregated sends to one-sided window puts at their "
        "proved-earliest placement and receives to fenced window reads "
        "(pair with --reliability onesided to price fences instead of "
        "receive overhead; on two-sided transports the program is its "
        "own bit-exact oracle)",
    )
    rel = p_run.add_argument_group("reliability / fault injection")
    rel.add_argument(
        "--drop-rate", type=_rate, default=0.0, metavar="P",
        help="probability a transmission attempt is lost (default 0)",
    )
    rel.add_argument(
        "--dup-rate", type=_rate, default=0.0, metavar="P",
        help="probability a delivery is duplicated (default 0)",
    )
    rel.add_argument(
        "--reorder-rate", type=_rate, default=0.0, metavar="P",
        help="probability a delivery is delayed/reordered (default 0)",
    )
    rel.add_argument(
        "--max-delay", type=_nonneg_float, default=400.0, metavar="T",
        help="maximum extra delay of a reordered delivery, in model "
        "time units (default 400)",
    )
    rel.add_argument(
        "--ack-drop-rate", type=_rate, default=None, metavar="P",
        help="probability an acknowledgement is lost (defaults to "
        "--drop-rate; forces spurious retransmissions)",
    )
    rel.add_argument(
        "--stall-rate", type=_rate, default=0.0, metavar="P",
        help="probability of a transient processor stall per comm call",
    )
    rel.add_argument(
        "--stall-time", type=_nonneg_float, default=200.0, metavar="T",
        help="mean transient-stall duration in model time units "
        "(default 200)",
    )
    rel.add_argument(
        "--fault-seed", type=int, default=0, metavar="SEED",
        help="seed of the deterministic fault plan (default 0)",
    )
    rel.add_argument(
        "--max-retries", type=_nonneg_int, default=10, metavar="N",
        help="reliable-transport retransmission cap (default 10)",
    )
    rel.add_argument(
        "--corrupt-rate", type=_rate, default=0.0, metavar="P",
        help="probability a transmitted payload copy is silently "
        "corrupted on the wire (one flipped word; default 0)",
    )
    rel.add_argument(
        "--corrupt-at", type=_corrupt_spec, action="append",
        metavar="SRC>DST:SEQ[@WORD]",
        help="corrupt one scheduled message: the SEQ-th payload from "
        "processor SRC to DST (word WORD of it, default 0); repeatable",
    )
    rel.add_argument(
        "--checksums", choices=["auto", "on", "off"], default="auto",
        help="payload checksum verification at receivers: auto = on "
        "exactly when corruption faults are injected (default)",
    )
    rel.add_argument(
        "--reliability",
        choices=["auto", "direct", "reliable", "unreliable", "onesided"],
        default="auto",
        help="transport: auto = reliable iff faults are injected "
        "(default), direct = historical exactly-once channel, "
        "unreliable = raw faulty network with no recovery, onesided = "
        "PGAS-style remote windows (puts/gets/fences) over the same "
        "ARQ machinery, bit-exact with reliable",
    )
    res = p_run.add_argument_group("crash tolerance")
    res.add_argument(
        "--crash-rate", type=_rate, default=0.0, metavar="P",
        help="probability a processor dies (fail-stop) at each "
        "communication call (default 0)",
    )
    res.add_argument(
        "--crash-at", type=_crash_spec, action="append",
        metavar="RANK@TIME",
        help="schedule a fail-stop crash: processor RANK (an integer, "
        "or comma-separated coordinates) dies when its clock reaches "
        "TIME; repeatable",
    )
    res.add_argument(
        "--checkpoint-interval", type=_pos_float, default=None,
        metavar="T",
        help="checkpoint every T model-time units (off by default; "
        "without any checkpoint flag, recovery replays from the start)",
    )
    res.add_argument(
        "--checkpoint-every-ops", type=_pos_int, default=None, metavar="K",
        help="checkpoint every K processor operations (off by default)",
    )
    res.add_argument(
        "--checkpoint-corrupt-rate", type=_rate, default=0.0, metavar="P",
        help="probability each checkpoint snapshot is silently "
        "corrupted at rest (detected by digest at restore; default 0)",
    )
    res.add_argument(
        "--checkpoint-corrupt-at", type=_ckpt_corrupt_spec,
        action="append", metavar="RANK@ORDINAL",
        help="corrupt processor RANK's ORDINAL-th checkpoint snapshot "
        "(restore falls back to its last valid one); repeatable",
    )
    res.add_argument(
        "--max-restarts", type=_nonneg_int, default=3, metavar="N",
        help="coordinated rollbacks to attempt before giving up with a "
        "crash report (default 3)",
    )
    res.add_argument(
        "--recovery-mode", choices=["global", "local"], default="global",
        help="crash recovery discipline: global = roll every rank back "
        "to its checkpoint (default), local = restart only the crashed "
        "rank, re-serving its messages from the sender log",
    )
    res.add_argument(
        "--log-bytes-cap", type=_pos_int, default=None, metavar="BYTES",
        help="cap the sender message log per channel; exceeding it "
        "fails fast with a structured LogOverflowError instead of "
        "growing without bound (default: uncapped)",
    )
    p_run.set_defaults(fn=cmd_run)

    p_chaos = sub.add_parser(
        "chaos",
        help="deterministic fault-space exploration with shrinking "
        "reproducers",
        description="Enumerate corruption fault schedules over the "
        "built-in conformance workloads, run each under both execution "
        "backends, check the runs against bit-exact array oracles and "
        "trace invariants, and shrink any failure to a minimal "
        "replayable JSON reproducer.  Exit status: 0 = every schedule "
        "met its expectation, 3 = findings (reproducers describe them).",
    )
    p_chaos.add_argument(
        "--workload", action="append", metavar="NAME",
        choices=["fig2", "fig8", "lu", "pipe", "stencil"],
        help="workload(s) to explore (repeatable; default: all five)",
    )
    p_chaos.add_argument(
        "--backend", action="append",
        choices=["threads", "coop", "event"],
        help="execution backend(s) to run under (repeatable; default: "
        "all three)",
    )
    p_chaos.add_argument(
        "--transport", action="append",
        choices=["reliable", "onesided"],
        help="transport(s) the network-fault and corruption trials run "
        "under (repeatable; default: both -- the one-sided window path "
        "must survive the same schedules bit-exactly)",
    )
    p_chaos.add_argument(
        "--seeds", type=_nonneg_int, default=8, metavar="N",
        help="number of rate-based fault-plan seeds to sweep "
        "(default 8)",
    )
    p_chaos.add_argument(
        "--corrupt-rate", type=_rate, default=0.05, metavar="P",
        help="corruption probability for the seed sweep (default 0.05)",
    )
    p_chaos.add_argument(
        "--no-targeted", action="store_true",
        help="skip the explicit schedules aimed at critical-path "
        "messages",
    )
    p_chaos.add_argument(
        "--recovery-mode", choices=["global", "local", "both"],
        default="both",
        help="crash-recovery discipline(s) the scheduled crash trials "
        "run under (default: both)",
    )
    p_chaos.add_argument(
        "--no-crashes", action="store_true",
        help="skip the scheduled fail-stop crash trials",
    )
    p_chaos.add_argument(
        "--vectorize", action="store_true",
        help="explore the vectorized node programs instead of scalar",
    )
    p_chaos.add_argument(
        "--shrink-budget", type=_nonneg_int, default=150, metavar="N",
        help="max extra runs spent shrinking failing schedules "
        "(default 150)",
    )
    p_chaos.add_argument(
        "--out", metavar="DIR", default=None,
        help="write one replayable reproducer JSON per finding here",
    )
    p_chaos.add_argument(
        "--replay", metavar="FILE", default=None,
        help="replay a reproducer JSON instead of exploring; exit 0 "
        "iff the recorded failure reproduces",
    )
    p_chaos.add_argument(
        "--inject-bug", action="store_true", help=argparse.SUPPRESS,
    )
    p_chaos.set_defaults(fn=cmd_chaos)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
