"""Loop splitting for merged loop nests (paper Section 5.4).

When several code fragments iterate the same index over different but
*comparably bounded* ranges, run-time guards can be removed by
splitting the index range at the fragments' boundaries::

    for i = 0 to 200:   receive(...)      for i = 0   to 99:  receive
    for i = 100 to 300: send(...)    =>   for i = 100 to 200: receive; send
                                          for i = 201 to 300: send

The split is only performed when the relative order of all bounds is
provable (from the parameter context); otherwise the compiler keeps
guards -- mirroring the paper's policy of splitting inner loops and
falling back to dynamic checks when magnitudes are unknown.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..polyhedra import (
    LinExpr,
    System,
    implies_inequality,
    integer_feasible,
)


class UnknownOrderError(Exception):
    """The relative magnitude of two bounds cannot be proven."""


@dataclass(frozen=True)
class RangeFragment:
    """One fragment: execute ``payload`` for ``lower <= i <= upper``."""

    lower: LinExpr
    upper: LinExpr
    payload: object

    def __post_init__(self):
        object.__setattr__(self, "lower", LinExpr.coerce(self.lower))
        object.__setattr__(self, "upper", LinExpr.coerce(self.upper))


@dataclass(frozen=True)
class SplitLoop:
    """One split segment and the payloads active inside it."""

    lower: LinExpr
    upper: LinExpr
    payloads: Tuple[object, ...]

    def describe(self) -> str:
        names = ", ".join(str(p) for p in self.payloads)
        return f"for i = {self.lower} to {self.upper}: {names}"


def _leq(a: LinExpr, b: LinExpr, context: Optional[System]) -> bool:
    """Is ``a <= b`` provable for every parameter value in context?"""
    ctx = context if context is not None else System()
    return implies_inequality(ctx, b - a)


def _proven_order(
    exprs: List[LinExpr], context: Optional[System]
) -> List[LinExpr]:
    """Insertion-sort bounds by provable <=; raise if incomparable.

    Expressions provably equal in value are merged (one cut point).
    """
    ordered: List[LinExpr] = []
    for expr in exprs:
        placed = False
        for idx, existing in enumerate(ordered):
            le = _leq(expr, existing, context)
            ge = _leq(existing, expr, context)
            if le and ge:
                placed = True  # same value: merge cut points
                break
            if le:
                ordered.insert(idx, expr)
                placed = True
                break
            if not ge:
                raise UnknownOrderError(
                    f"cannot order {expr} against {existing}"
                )
        if not placed:
            ordered.append(expr)
    return ordered


def split_ranges(
    fragments: Sequence[RangeFragment],
    context: Optional[System] = None,
) -> List[SplitLoop]:
    """Split overlapping ranges into disjoint segments (Section 5.4).

    Returns consecutive loops covering the union of the fragment
    ranges, each listing the payloads active within it, in the order
    the fragments were given.  Raises :class:`UnknownOrderError` when
    bounds cannot be totally ordered from the context -- the caller
    should then keep guards (the paper's dynamic-splitting fallback).
    """
    if not fragments:
        return []
    # candidate cut points: every lower, and every upper + 1
    cuts: List[LinExpr] = []
    for frag in fragments:
        for candidate in (frag.lower, frag.upper + 1):
            if candidate not in cuts:
                cuts.append(candidate)
    ordered = _proven_order(cuts, context)

    out: List[SplitLoop] = []
    for start, nxt in zip(ordered, ordered[1:]):
        segment_upper = nxt - 1
        active = tuple(
            frag.payload
            for frag in fragments
            if _leq(frag.lower, start, context)
            and _leq(segment_upper, frag.upper, context)
        )
        if not active:
            continue
        # drop provably empty segments
        probe = (context or System()).copy()
        try:
            probe.add_le(start, segment_upper)
        except Exception:
            continue
        if not integer_feasible(probe):
            continue
        out.append(SplitLoop(start, segment_upper, active))
    return out
