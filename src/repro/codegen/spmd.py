"""SPMD program assembly (paper Sections 5.3, 5.4, 7).

Builds one node program per physical processor from:

* the computation decompositions (one per statement),
* the communication sets derived from Last Write Trees (Theorems 3/4),
* the aggregation plans (Section 6.2).

Structure of the generated program::

    # preload: Theorem-4 data movement, sends then receives
    for p in my virtual processors:          # CVirtLoop, stride P
        <mirrored program nest, bounds refined per statement>
            <receive fragments, guarded, just before first use>
            <compute statements, guarded by their placement>
            <send fragments, guarded, right after the data are ready>

Communication fragments are merged into the computation structure by
folding their leading scan levels into guards (the enclosing loops
already enumerate those variables) -- the guard-based variant of the
paper's loop-merging, with the early-send / early-receive placement of
Section 7: a fragment is pushed as deep as its message identity is
pinned by enclosing loops, so the LU pivot row is sent immediately
after the first i2 iteration produces it, exactly like Figure 13.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..core import (
    CommSet,
    build_plan,
    canonicalize_senders,
    eliminate_self_reuse,
    from_leaf,
    initial_comm,
)
from ..dataflow import all_trees
from ..decomp import CompDecomp, DataDecomp, ProcSpace
from ..ir import Loop, Program, Statement
from ..polyhedra import (
    EmptyPolyhedronError,
    LinExpr,
    Lin,
    ScanResult,
    System,
    eliminate_many,
    scan,
)
from .cast import (
    CBlock,
    CCollectDest,
    CComment,
    CCompute,
    CGuard,
    CNewBuffer,
    CNewDestSet,
    CNode,
    CondNeqPhys,
    CPack,
    CRecv,
    CSend,
    CSendMulti,
    CUnpack,
    compile_node_program,
    emit_c,
    fresh_buffer,
)
from .genloops import (
    guards_from_system,
    scan_to_cast,
    scan_to_cast_with_boundary,
)


@dataclass
class SPMDOptions:
    """Optimization switches (each one is an ablation axis)."""

    aggregate: bool = True
    self_reuse: bool = True
    multicast: bool = True
    early_placement: bool = True
    skip_same_physical: bool = True  # Section 6.1.3 dynamic check
    #: emit innermost compute/pack/unpack loops as whole-range numpy
    #: operations when provably equivalent (DESIGN.md §10); the scalar
    #: loop is always available as an ablation axis
    vectorize: bool = True
    #: lower aggregated sends to one-sided window puts at their already
    #: proved-earliest placement, and matching receives to fenced window
    #: reads (DESIGN.md §16).  Placement is unchanged -- the Theorem-3/4
    #: prefix-extension proofs that license early placement for sends
    #: license the puts too -- only the lowering verbs differ, so on a
    #: two-sided transport the early-put program is its own oracle.
    early_puts: bool = False


@dataclass
class SPMD:
    """A generated SPMD program plus everything needed to run/inspect it."""

    program: Program
    space: ProcSpace
    tree: CBlock
    source: str
    c_text: str
    node: Callable
    commsets: List[CommSet] = field(default_factory=list)
    plans: List = field(default_factory=list)


class SPMDGenerationError(Exception):
    pass


# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------

def _project_onto(system: System, keep: Sequence[str], all_vars) -> System:
    drop = [v for v in all_vars if v not in set(keep)]
    return eliminate_many(system, drop)


def _pvar_exprs(pvars: Sequence[str]):
    return tuple(Lin(LinExpr.var(v)) for v in pvars)


def _scan_or_none(system, order, context) -> Optional[ScanResult]:
    try:
        return scan(system, order, context=context)
    except EmptyPolyhedronError:
        return None


# ---------------------------------------------------------------------------
# fragments
# ---------------------------------------------------------------------------

@dataclass
class _Fragment:
    """A communication fragment and where it belongs in the master tree.

    ``anchor``: loop chain depth in the owning statement's loops.
    ``side``: 'before' (receives) or 'after' (sends) the subtree that
    contains ``stmt`` at that depth; preload fragments use depth -1 and
    live outside the main nest.
    """

    node: CNode
    stmt: Statement
    depth: int
    side: str


def _unique_given_prefix(
    system: System,
    order: List[str],
    pos: int,
    context: System,
) -> bool:
    """Is ``order[pos]`` uniquely determined by ``order[:pos]``?

    Exact test: two solutions agreeing on the prefix but differing in
    the variable would witness non-uniqueness; we duplicate the
    variable and everything after it, force a strict difference, and
    ask the integer test for a solution.
    """
    from ..polyhedra import LinExpr as LE
    from ..polyhedra import integer_feasible

    var = order[pos]
    later = [v for v in system.variables() if v not in set(order[:pos])]
    rename = {v: v + "$dup" for v in later}
    try:
        probe = system.intersect(system.rename(rename))
        probe.add_inequality(
            LE.var(var + "$dup") - LE.var(var) - 1
        )
    except Exception:
        return True  # syntactically impossible to differ
    if context is not None:
        probe = probe.intersect(context)
    return not integer_feasible(probe)


def _scan_level_degenerate(
    system: System,
    order: List[str],
    positions: List[int],
    context: System,
) -> bool:
    """Are the given order positions functions of the earlier ones?"""
    return all(
        _unique_given_prefix(system, order, pos, context)
        for pos in positions
    )


def _extend_prefix(
    system: System,
    base_order: List[str],
    extend_vars: List[str],
    context: System,
) -> int:
    """How many of ``extend_vars`` (appended after base_order) scan as
    degenerate levels?  Those levels are pinned by the enclosing code
    and can become enclosing-loop guards (early send placement)."""
    ext = 0
    for _nxt in extend_vars:
        order = base_order + extend_vars[: ext + 1]
        if _scan_level_degenerate(
            system, order, [len(order) - 1], context
        ):
            ext += 1
        else:
            break
    return ext


def _extend_recv_prefix(
    system: System,
    base_order: List[str],
    extend_vars: List[str],
    msg_vars: List[str],
    context: System,
) -> int:
    """Early-receive placement: push the receive into reader loops.

    Extending the receive point to reader loop level ``cand`` is valid
    iff receives and messages stay in bijection:

    * the message identity determines ``cand``'s value (scanning with
      the message variables *before* the candidate, the candidate level
      is degenerate), so each message is consumed exactly once; and
    * the receive position determines the message (scanning with the
      message variables *after* the extended prefix, every message-id
      level is degenerate), so the inner scan knows which message to
      wait for.

    This is what places the LU pivot-row receive inside the i1 loop --
    virtual processors stay pipelined instead of waiting up front.
    """
    ext = 0
    for _nxt in extend_vars:
        prefix = base_order + extend_vars[: ext + 1]
        cand = extend_vars[ext]
        order_b = base_order + extend_vars[:ext] + msg_vars + [cand]
        order_a = prefix + msg_vars
        ok_b = _scan_level_degenerate(
            system, order_b, [len(order_b) - 1], context
        )
        ok_a = _scan_level_degenerate(
            system,
            order_a,
            list(range(len(prefix), len(order_a))),
            context,
        )
        if ok_a and ok_b:
            ext += 1
        else:
            break
    return ext


def _carried_fragments(
    cs: CommSet,
    plan,
    pvars: Tuple[str, ...],
    context: System,
    options: SPMDOptions,
) -> Tuple[Optional[_Fragment], Optional[_Fragment]]:
    """Send and receive fragments for a Theorem-3 communication set."""
    k = max(1, cs.level)
    writer = cs.write_stmt
    reader = cs.read_stmt
    rank = len(pvars)
    all_vars = list(cs.all_vars())

    # ---------------- send side -------------------------------------------
    send_rename = {v: v + "$r" for v in reader.iter_vars}
    send_system = cs.system.rename(send_rename)
    send_rename2 = {v + "$s": v for v in writer.iter_vars}
    send_rename2.update(
        {sp: p for sp, p in zip(cs.send_proc_vars, pvars)}
    )
    send_system = send_system.rename(send_rename2)
    send_all = [send_rename2.get(send_rename.get(v, v), send_rename.get(v, v)) for v in all_vars]

    is_vars = list(writer.iter_vars)
    if not options.aggregate:
        # Per-element messages (Section 5.3's unoptimized form): treat
        # every send iteration as its own message boundary.
        k = len(is_vars) + 1
    is_prefix = is_vars[: k - 1]
    is_rest = is_vars[k - 1 :]
    pr_vars = list(cs.recv_proc_vars)
    a_vars = list(cs.data_vars)

    ext_s = 0
    if options.early_placement:
        ext_s = _extend_prefix(
            send_system, list(pvars) + is_prefix, is_rest, context
        )
    send_prefix = list(pvars) + is_prefix + is_rest[:ext_s]
    content_s = is_rest[ext_s:] + a_vars
    # per-element mode: reader iterations join the message identity so
    # every dynamic read gets its own message (the unoptimized form)
    extra_msg_s = (
        [v + "$r" for v in reader.iter_vars] if not options.aggregate else []
    )

    tag_exprs = _pvar_exprs(pvars) + tuple(
        Lin(LinExpr.var(v)) for v in is_prefix
    )
    buf = fresh_buffer()
    multicast = options.aggregate and options.multicast and plan.multicast

    if multicast:
        pack_keep = send_prefix + content_s
        pack_sys = _project_onto(send_system, pack_keep, send_all)
        pack_scan = _scan_or_none(pack_sys, pack_keep, context)
        dest_keep = send_prefix + pr_vars
        dest_sys = _project_onto(send_system, dest_keep, send_all)
        dest_scan = _scan_or_none(dest_sys, dest_keep, context)
        if pack_scan is None or dest_scan is None:
            send_frag = None
        else:
            dests = "dests_" + buf

            def at_boundary(build_content, _buf=buf, _dests=dests,
                            _pack=pack_scan, _dest=dest_scan):
                pack_leaf = CPack(
                    _buf,
                    cs.write_stmt.lhs.array.name,
                    tuple(Lin(LinExpr.var(v)) for v in a_vars),
                )
                nodes: List[CNode] = [CNewBuffer(_buf)]
                nodes.append(build_content(pack_leaf))
                nodes.append(CNewDestSet(_dests))
                nodes.append(
                    scan_to_cast(
                        _dest,
                        CCollectDest(
                            _dests,
                            tuple(
                                Lin(LinExpr.var(v)) for v in pr_vars
                            ),
                        ),
                        skip=len(send_prefix),
                    )
                )
                nodes.append(
                    CSendMulti(_buf, _dests, cs.label, tag_exprs)
                )
                return nodes

            node = scan_to_cast_with_boundary(
                pack_scan,
                skip=len(send_prefix),
                boundary=len(send_prefix),
                at_boundary=at_boundary,
            )
            send_frag = _Fragment(
                node, writer, k - 1 + ext_s, "after"
            )
    else:
        keep = send_prefix + pr_vars + extra_msg_s + content_s
        sys_ = _project_onto(send_system, keep, send_all)
        result = _scan_or_none(sys_, keep, context)
        if result is None:
            send_frag = None
        else:
            def at_boundary(build_content, _buf=buf):
                pack_leaf = CPack(
                    _buf,
                    cs.write_stmt.lhs.array.name,
                    tuple(Lin(LinExpr.var(v)) for v in a_vars),
                )
                send_tag = (
                    tag_exprs
                    + tuple(Lin(LinExpr.var(v)) for v in pr_vars)
                    + tuple(Lin(LinExpr.var(v)) for v in extra_msg_s)
                )
                inner = CBlock(
                    [
                        CNewBuffer(_buf),
                        build_content(pack_leaf),
                        CSend(
                            _buf,
                            tuple(Lin(LinExpr.var(v)) for v in pr_vars),
                            cs.label,
                            send_tag,
                            put=options.early_puts,
                        ),
                    ]
                )
                if options.skip_same_physical:
                    return [
                        CGuard(
                            [
                                CondNeqPhys(
                                    tuple(
                                        Lin(LinExpr.var(v))
                                        for v in pr_vars
                                    ),
                                    _pvar_exprs(pvars),
                                )
                            ],
                            inner,
                        )
                    ]
                return [inner]

            node = scan_to_cast_with_boundary(
                result,
                skip=len(send_prefix),
                boundary=len(send_prefix) + len(
                    [
                        v
                        for v in pr_vars + extra_msg_s
                        if sys_.involves(v)
                    ]
                ),
                at_boundary=at_boundary,
            )
            send_frag = _Fragment(
                node, writer, min(k - 1 + ext_s, len(is_vars)), "after"
            )

    # ---------------- receive side ------------------------------------------
    recv_rename = {rp: p for rp, p in zip(cs.recv_proc_vars, pvars)}
    recv_system = cs.system.rename(recv_rename)
    recv_all = [recv_rename.get(v, v) for v in all_vars]

    ir_vars = list(reader.iter_vars)
    ir_prefix = (
        ir_vars[: k - 1] if options.aggregate else list(ir_vars)
    )
    ir_rest = ir_vars[k - 1 :] if options.aggregate else []
    ps_vars = list(cs.send_proc_vars)
    is_s_prefix = [v + "$s" for v in is_prefix]
    content_r = [v + "$s" for v in is_rest[ext_s:]] + a_vars

    ext_r = 0
    if options.early_placement and ir_rest:
        msg_vars = [
            v
            for v in ps_vars + is_s_prefix
            if recv_system.involves(v)
        ]
        ext_r = _extend_recv_prefix(
            recv_system,
            list(pvars) + ir_prefix,
            ir_rest,
            msg_vars,
            context,
        )
    recv_prefix = list(pvars) + ir_prefix + ir_rest[:ext_r]

    keep_r = (
        recv_prefix
        + ps_vars
        + is_s_prefix
        + [v + "$s" for v in is_rest[:ext_s]]
        + content_r
    )
    sys_r = _project_onto(recv_system, keep_r, recv_all)
    result_r = _scan_or_none(sys_r, keep_r, context)
    if result_r is None:
        recv_frag = None
    else:
        rbuf = fresh_buffer()
        recv_tag = tuple(Lin(LinExpr.var(v)) for v in ps_vars) + tuple(
            Lin(LinExpr.var(v)) for v in is_s_prefix
        )
        if not multicast:
            # canonical order: ps dims, is prefix, pr dims [, reader
            # iteration in per-element mode] -- must match the sender's
            # tag layout exactly
            recv_tag = (
                tuple(Lin(LinExpr.var(v)) for v in ps_vars)
                + tuple(Lin(LinExpr.var(v)) for v in is_s_prefix)
                + _pvar_exprs(pvars)
            )
            if not options.aggregate:
                recv_tag = recv_tag + tuple(
                    Lin(LinExpr.var(v)) for v in reader.iter_vars
                )

        def at_boundary_r(build_content, _buf=rbuf):
            unpack_leaf = CUnpack(
                _buf,
                cs.write_stmt.lhs.array.name,
                tuple(Lin(LinExpr.var(v)) for v in a_vars),
            )
            inner = CBlock(
                [
                    CRecv(
                        _buf,
                        tuple(Lin(LinExpr.var(v)) for v in ps_vars),
                        cs.label,
                        recv_tag,
                        multicast=multicast,
                        fence=options.early_puts,
                    ),
                    build_content(unpack_leaf),
                ]
            )
            if options.skip_same_physical:
                return [
                    CGuard(
                        [
                            CondNeqPhys(
                                tuple(
                                    Lin(LinExpr.var(v)) for v in ps_vars
                                ),
                                _pvar_exprs(pvars),
                            )
                        ],
                        inner,
                    )
                ]
            return [inner]

        boundary_r = len(recv_prefix) + len(
            [
                v
                for v in ps_vars
                + is_s_prefix
                + [x + "$s" for x in is_rest[:ext_s]]
                if sys_r.involves(v)
            ]
        )
        node = scan_to_cast_with_boundary(
            result_r,
            skip=len(recv_prefix),
            boundary=boundary_r,
            at_boundary=at_boundary_r,
        )
        recv_frag = _Fragment(node, reader, k - 1 + ext_r, "before")

    return send_frag, recv_frag


def _tag_layout_note() -> str:
    return (
        "message tags: (label, virtual sender dims, sender outer "
        "iteration, [virtual receiver dims])"
    )


def _preload_fragments(
    cs: CommSet,
    pvars: Tuple[str, ...],
    context: System,
    options: SPMDOptions,
) -> Tuple[Optional[CNode], Optional[CNode]]:
    """Pre-nest data movement (Theorem 4): returns (send, recv) trees,
    each a standalone loop nest over this processor's virtual procs."""
    rank = len(pvars)
    all_vars = list(cs.all_vars())
    array = cs.read_access.array.name
    a_vars = list(cs.data_vars)

    # send side: I own the data (p_s = my virtual p)
    s_rename = {sp: p for sp, p in zip(cs.send_proc_vars, pvars)}
    s_sys = cs.system.rename(s_rename)
    s_all = [s_rename.get(v, v) for v in all_vars]
    pr_vars = list(cs.recv_proc_vars)
    keep_s = list(pvars) + pr_vars + a_vars
    proj_s = _project_onto(s_sys, keep_s, s_all)
    scan_s = _scan_or_none(proj_s, keep_s, context)
    send_tree = None
    if scan_s is not None:
        buf = fresh_buffer()

        def at_boundary_s(build_content, _buf=buf):
            pack_leaf = CPack(
                _buf, array, tuple(Lin(LinExpr.var(v)) for v in a_vars)
            )
            tag = (
                _pvar_exprs(pvars)
                + tuple(Lin(LinExpr.var(v)) for v in pr_vars)
            )
            inner = CBlock(
                [
                    CNewBuffer(_buf),
                    build_content(pack_leaf),
                    CSend(
                        _buf,
                        tuple(Lin(LinExpr.var(v)) for v in pr_vars),
                        cs.label,
                        tag,
                        put=options.early_puts,
                    ),
                ]
            )
            if options.skip_same_physical:
                return [
                    CGuard(
                        [
                            CondNeqPhys(
                                tuple(
                                    Lin(LinExpr.var(v)) for v in pr_vars
                                ),
                                _pvar_exprs(pvars),
                            )
                        ],
                        inner,
                    )
                ]
            return [inner]

        virt = {p: (k, rank) for k, p in enumerate(pvars)}
        send_tree = scan_to_cast_with_boundary(
            scan_s,
            skip=0,
            boundary=rank + len([v for v in pr_vars if proj_s.involves(v)]),
            at_boundary=at_boundary_s,
            virt_dims=virt,
        )

    # receive side: I execute the reads (p_r = my virtual p)
    r_rename = {rp: p for rp, p in zip(cs.recv_proc_vars, pvars)}
    r_sys = cs.system.rename(r_rename)
    r_all = [r_rename.get(v, v) for v in all_vars]
    ps_vars = list(cs.send_proc_vars)
    keep_r = list(pvars) + ps_vars + a_vars
    proj_r = _project_onto(r_sys, keep_r, r_all)
    scan_r = _scan_or_none(proj_r, keep_r, context)
    recv_tree = None
    if scan_r is not None:
        rbuf = fresh_buffer()

        def at_boundary_r(build_content, _buf=rbuf):
            unpack_leaf = CUnpack(
                _buf, array, tuple(Lin(LinExpr.var(v)) for v in a_vars)
            )
            tag = (
                tuple(Lin(LinExpr.var(v)) for v in ps_vars)
                + _pvar_exprs(pvars)
            )
            inner = CBlock(
                [
                    CRecv(
                        _buf,
                        tuple(Lin(LinExpr.var(v)) for v in ps_vars),
                        cs.label,
                        tag,
                        fence=options.early_puts,
                    ),
                    build_content(unpack_leaf),
                ]
            )
            if options.skip_same_physical:
                return [
                    CGuard(
                        [
                            CondNeqPhys(
                                tuple(
                                    Lin(LinExpr.var(v)) for v in ps_vars
                                ),
                                _pvar_exprs(pvars),
                            )
                        ],
                        inner,
                    )
                ]
            return [inner]

        virt = {p: (k, rank) for k, p in enumerate(pvars)}
        recv_tree = scan_to_cast_with_boundary(
            scan_r,
            skip=0,
            boundary=rank + len([v for v in ps_vars if proj_r.involves(v)]),
            at_boundary=at_boundary_r,
            virt_dims=virt,
        )
    return send_tree, recv_tree


# ---------------------------------------------------------------------------
# master structure
# ---------------------------------------------------------------------------

def _build_master(
    program: Program,
    comps: Dict[str, CompDecomp],
    pvars: Tuple[str, ...],
    context: System,
    fragments: List[_Fragment],
) -> CBlock:
    """The mirrored nest with per-statement refinement and fragment
    insertion, wrapped in virtual-processor loops."""
    rank = len(pvars)
    # per-statement refined scans
    stmt_scans: Dict[str, ScanResult] = {}
    for stmt in program.statements():
        comp = comps[stmt.name]
        order = list(pvars) + list(stmt.iter_vars)
        try:
            stmt_scans[stmt.name] = scan(
                comp.system(pvars), order, context=context
            )
        except EmptyPolyhedronError:
            stmt_scans[stmt.name] = None

    # group fragments by (anchor container id, child index, side)
    frag_index: Dict[Tuple[int, int, str], List[CNode]] = {}
    for frag in fragments:
        depth = frag.depth
        chain = frag.stmt.loops
        if depth > len(chain):
            depth = len(chain)
        container = chain[depth - 1] if depth >= 1 else None
        child_idx = frag.stmt.path[depth]
        key = (id(container), child_idx, frag.side)
        frag_index.setdefault(key, []).append(frag.node)

    def loop_level(stmt: Statement, loop: Loop) -> int:
        return stmt.loops.index(loop)

    def statements_under(nodes) -> List[Statement]:
        out = []
        for node in nodes:
            if isinstance(node, Statement):
                out.append(node)
            else:
                out.extend(statements_under(node.body))
        return out

    def build_body(nodes, container) -> CBlock:
        block = CBlock([])
        for idx, node in enumerate(nodes):
            key_b = (id(container), idx, "before")
            for frag_node in frag_index.get(key_b, []):
                block.children.append(frag_node)
            if isinstance(node, Statement):
                scan_res = stmt_scans.get(node.name)
                guards = guards_from_system(
                    comps[node.name].placement_only(pvars)
                )
                compute = CCompute(node)
                if guards:
                    block.children.append(
                        CGuard(guards, CBlock([compute]))
                    )
                else:
                    block.children.append(compute)
            else:
                block.children.append(build_loop(node))
            key_a = (id(container), idx, "after")
            for frag_node in frag_index.get(key_a, []):
                block.children.append(frag_node)
        return block

    def build_loop(loop: Loop) -> CNode:
        # refinement: all statements under this loop agree on the bounds?
        stmts = statements_under(loop.body)
        per_stmt = []
        for stmt in stmts:
            res = stmt_scans.get(stmt.name)
            if res is None:
                per_stmt.append(None)
                continue
            level = rank + loop_level(stmt, loop)
            per_stmt.append(res.loops[level])
        refined = None
        if per_stmt and all(sl is not None for sl in per_stmt):
            first = per_stmt[0]
            same = all(
                sl.lowers == first.lowers
                and sl.uppers == first.uppers
                and sl.assignment == first.assignment
                and sl.div_guard == first.div_guard
                and sl.step == first.step
                for sl in per_stmt
            )
            if same:
                refined = first
        body = build_body(loop.body, loop)
        if refined is not None:
            from .genloops import _wrap_level

            return _wrap_level(refined, body, {})
        from ..polyhedra import ScanLoop

        plain = ScanLoop(
            loop.var,
            lowers=[(1, loop.lower)],
            uppers=[(1, loop.upper)],
        )
        from .genloops import _wrap_level

        return _wrap_level(plain, body, {})

    nest = build_body(program.body, None)

    # wrap in virtual processor loops (innermost dim innermost)
    from ..polyhedra import ScanLoop
    from .cast import CVirtLoop

    space = next(iter(comps.values())).space
    wrapped: CNode = nest
    pdomain = space.virtual_domain(pvars)
    result = scan(pdomain, list(pvars), context=context, check_empty=False)
    for dim in range(rank - 1, -1, -1):
        level = result.loops[dim]
        if level.is_degenerate():
            lower = upper = level.assignment
        else:
            lower, upper = level.lower_expr(), level.upper_expr()
        wrapped = CVirtLoop(
            pvars[dim],
            lower,
            upper,
            dim,
            rank,
            wrapped if isinstance(wrapped, CBlock) else CBlock([wrapped]),
        )
    return CBlock([wrapped])


# ---------------------------------------------------------------------------
# the driver
# ---------------------------------------------------------------------------

def _reset_fresh_name_counters() -> None:
    """Make each compilation a deterministic function of its inputs.

    Fresh names (FM/lexmax auxiliaries, uniform-family offsets, message
    buffers) only need to be distinct within one compile; restarting
    their counters at compile entry makes identical inputs produce
    bit-identical artifacts and identical content-addressed cache keys
    across repeats and across processes.
    """
    from ..core.group import reset_offset_names
    from ..polyhedra.lexmax import reset_aux_names as _reset_lexmax
    from ..polyhedra.omega import reset_aux_names as _reset_omega
    from .cast import reset_buffer_names

    reset_offset_names()
    _reset_lexmax()
    _reset_omega()
    reset_buffer_names()


def generate_spmd(
    program: Program,
    comps: Dict[str, CompDecomp],
    initial_data: Optional[Dict[str, DataDecomp]] = None,
    final_data: Optional[Dict[str, DataDecomp]] = None,
    options: Optional[SPMDOptions] = None,
) -> SPMD:
    """Compile a program + decompositions into an SPMD node program.

    ``comps`` maps statement names to computation decompositions (all on
    the same processor space).  ``initial_data`` maps array names to the
    initial data decomposition; reads of values defined outside the nest
    whose array has an entry get Theorem-4 preload communication, other
    arrays are assumed replicated (every processor already has them).
    ``final_data`` requests finalization (Section 4.4.3): live-out
    values are written back to their homes under the final layout after
    the nest.
    """
    options = options or SPMDOptions()
    _reset_fresh_name_counters()
    context = program.assumptions
    spaces = {id(c.space) for c in comps.values()}
    if len(spaces) != 1:
        raise SPMDGenerationError(
            "all computation decompositions must share one processor space"
        )
    space = next(iter(comps.values())).space
    pvars = tuple(f"p{k}" for k in range(space.rank))

    trees = all_trees(program)
    commsets: List[CommSet] = []
    plans = []
    fragments: List[_Fragment] = []
    preload_sends: List[CNode] = []
    preload_recvs: List[CNode] = []

    for (stmt_name, ridx), tree in trees.items():
        stmt = program.statement(stmt_name)
        access = stmt.reads[ridx]
        for leaf in tree.writer_leaves():
            writer = leaf.writer
            base_sets = from_leaf(
                leaf,
                access,
                comps[stmt_name],
                comps[writer.name],
                assumptions=context,
                label=f"{stmt_name}.r{ridx}.",
            )
            for cs in base_sets:
                reduced = (
                    eliminate_self_reuse(cs) if options.self_reuse else [cs]
                )
                for mini in reduced:
                    if mini.is_empty():
                        continue
                    plan = build_plan(
                        mini,
                        aggregate=options.aggregate,
                        detect_multicast=options.multicast,
                        context=context,
                    )
                    commsets.append(mini)
                    plans.append(plan)
                    send_f, recv_f = _carried_fragments(
                        mini, plan, pvars, context, options
                    )
                    if send_f:
                        fragments.append(send_f)
                    if recv_f:
                        fragments.append(recv_f)
        if initial_data and access.array.name in initial_data:
            d_init = initial_data[access.array.name]
            for leaf in tree.bottom_leaves():
                sets = initial_comm(
                    leaf,
                    access,
                    comps[stmt_name],
                    d_init,
                    assumptions=context,
                    label=f"{stmt_name}.r{ridx}.",
                )
                for cs in sets:
                    for mini in (
                        canonicalize_senders(cs)
                        if d_init.is_replicated()
                        else [cs]
                    ):
                        reduced = (
                            eliminate_self_reuse(mini)
                            if options.self_reuse
                            else [mini]
                        )
                        for cs2 in reduced:
                            if cs2.is_empty():
                                continue
                            commsets.append(cs2)
                            send_t, recv_t = _preload_fragments(
                                cs2, pvars, context, options
                            )
                            if send_t:
                                preload_sends.append(send_t)
                            if recv_t:
                                preload_recvs.append(recv_t)

    # finalization (Section 4.4.3)
    final_sends: List[CNode] = []
    final_recvs: List[CNode] = []
    if final_data:
        from ..core.finalization import (
            finalization_comm,
            finalization_initial,
        )
        from ..dataflow.finalize import final_write_tree

        for array_name, d_final in final_data.items():
            array = program.arrays[array_name]
            tree = final_write_tree(program, array)
            probe = tree.stmt
            for leaf in tree.writer_leaves():
                sets = finalization_comm(
                    leaf,
                    probe,
                    array,
                    comps[leaf.writer.name],
                    d_final,
                    assumptions=context,
                    label=f"{array_name}.",
                )
                for cs in sets:
                    if cs.is_empty():
                        continue
                    commsets.append(cs)
                    send_t, recv_t = _preload_fragments(
                        cs, pvars, context, options
                    )
                    if send_t:
                        final_sends.append(send_t)
                    if recv_t:
                        final_recvs.append(recv_t)
            if initial_data and array_name in initial_data:
                for leaf in tree.bottom_leaves():
                    sets = finalization_initial(
                        leaf,
                        probe,
                        array,
                        initial_data[array_name],
                        d_final,
                        assumptions=context,
                        label=f"{array_name}.",
                    )
                    for cs in sets:
                        minis = (
                            canonicalize_senders(cs)
                            if initial_data[array_name].is_replicated()
                            else [cs]
                        )
                        for mini in minis:
                            if mini.is_empty():
                                continue
                            commsets.append(mini)
                            send_t, recv_t = _preload_fragments(
                                mini, pvars, context, options
                            )
                            if send_t:
                                final_sends.append(send_t)
                            if recv_t:
                                final_recvs.append(recv_t)

    master = _build_master(program, comps, pvars, context, fragments)

    children: List[CNode] = []
    if preload_sends or preload_recvs:
        children.append(CComment("preload: initial data movement (Thm 4)"))
        children.extend(preload_sends)
        children.extend(preload_recvs)
    children.append(CComment("main nest"))
    children.extend(master.children)
    if final_sends or final_recvs:
        children.append(
            CComment("finalization: write-back to the final layout (4.4.3)")
        )
        children.extend(final_sends)
        children.extend(final_recvs)
    tree = CBlock(children)

    node = compile_node_program(
        tree, space.rank, program.params, vectorize=options.vectorize
    )
    return SPMD(
        program=program,
        space=space,
        tree=tree,
        source=node.__source__,
        c_text=emit_c(tree),
        node=node,
        commsets=commsets,
        plans=plans,
    )
