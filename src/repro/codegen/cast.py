"""The generated-code AST ("CAST") and its two emitters.

Code generation produces a small imperative tree: loops with
quasi-affine bounds, guards, degenerate assignments, statement
executions, message packs/sends and receives/unpacks.  The same tree
pretty-prints as C-like text (for inspection and for reproducing the
paper's Figures 7, 10 and 13) and emits executable Python (run on the
:mod:`repro.runtime` machine simulator).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..ir import Statement
from ..polyhedra import (
    BExpr,
    CeilDiv,
    Combo,
    FloorDiv,
    Lin,
    LinExpr,
    MaxE,
    MinE,
    ModE,
)

# -- conditions ---------------------------------------------------------------


@dataclass(frozen=True)
class CondGE:
    """``expr >= 0``."""

    expr: LinExpr


@dataclass(frozen=True)
class CondEQ:
    """``expr == 0``."""

    expr: LinExpr


@dataclass(frozen=True)
class CondDiv:
    """``expr mod modulus == 0``."""

    expr: LinExpr
    modulus: int


@dataclass(frozen=True)
class CondBounds:
    """``lower <= var <= upper`` with generated bound expressions."""

    var: str
    lower: Optional[BExpr]
    upper: Optional[BExpr]


@dataclass(frozen=True)
class CondNeqPhys:
    """``pi(left) != pi(right)``: different physical processors.

    Implements the dynamic part of Section 6.1.3 (cyclic-emulation
    redundancy): messages between virtual processors folded onto the
    same physical processor are skipped on both sides.
    """

    left: Tuple[BExpr, ...]
    right: Tuple[BExpr, ...]


Cond = Union[CondGE, CondEQ, CondDiv, CondBounds, CondNeqPhys]


# -- nodes ---------------------------------------------------------------------


class CNode:
    pass


@dataclass
class CBlock(CNode):
    children: List[CNode] = field(default_factory=list)


@dataclass
class CFor(CNode):
    var: str
    lower: BExpr
    upper: BExpr
    body: CBlock
    step: int = 1


@dataclass
class CVirtLoop(CNode):
    """Iterate the virtual processors of this physical processor:

        for var = myp + P*ceil((lower - myp)/P) to upper step P

    ``dim`` selects the processor dimension (myp{dim} / P{dim} at
    runtime; the 1-D case uses ``myp`` and ``P``).
    """

    var: str
    lower: BExpr
    upper: BExpr
    dim: int
    rank: int
    body: CBlock


@dataclass
class CAssign(CNode):
    var: str
    value: BExpr


@dataclass
class CGuard(CNode):
    conds: List[Cond]
    body: CBlock


@dataclass
class CCompute(CNode):
    stmt: Statement


@dataclass
class CNewBuffer(CNode):
    name: str


@dataclass
class CPack(CNode):
    buffer: str
    array: str
    indices: Tuple[BExpr, ...]


@dataclass
class CSend(CNode):
    """Send ``buffer`` to the physical processor hosting virtual
    ``dest``; the tag identifies the message across the whole run.

    ``put`` marks an early one-sided window write (``--early-puts``):
    the emitter lowers it to ``proc.put`` -- on the onesided transport a
    remote window update issued at this, the earliest clock the
    polyhedral engine proves the data final; on two-sided transports an
    alias of ``proc.send``, so the same program is its own oracle.
    """

    buffer: str
    dest: Tuple[BExpr, ...]
    tag_label: str
    tag_exprs: Tuple[BExpr, ...]
    put: bool = False


@dataclass
class CSendMulti(CNode):
    """Multicast: send one buffer to every distinct physical processor
    collected in ``dest_set`` (a runtime set variable)."""

    buffer: str
    dest_set: str
    tag_label: str
    tag_exprs: Tuple[BExpr, ...]


@dataclass
class CCollectDest(CNode):
    """Add pi(dest) to a destination set (multicast address gathering).

    ``exclude_self``: skip when the destination is this processor.
    """

    dest_set: str
    dest: Tuple[BExpr, ...]
    exclude_self: bool = True


@dataclass
class CNewDestSet(CNode):
    name: str


@dataclass
class CRecv(CNode):
    """Receive into ``buffer`` from the physical host of virtual ``src``.

    ``multicast`` marks messages addressed per physical processor: the
    runtime caches them so every virtual processor emulated here can
    consume the same payload (Section 6.1.3's one-message-per-physical
    optimization).

    ``fence`` marks the consumption of an early one-sided put
    (``--early-puts``): the emitter yields a fenced receive request, so
    the runtime prices a window fence (``CostModel.fence_time``)
    instead of the two-sided ``recv_overhead`` and reads the payload
    from the local window.
    """

    buffer: str
    src: Tuple[BExpr, ...]
    tag_label: str
    tag_exprs: Tuple[BExpr, ...]
    multicast: bool = False
    fence: bool = False


@dataclass
class CUnpack(CNode):
    buffer: str
    array: str
    indices: Tuple[BExpr, ...]


@dataclass
class CComment(CNode):
    text: str


_BUF_IDS = itertools.count()


def fresh_buffer() -> str:
    return f"buf{next(_BUF_IDS)}"


def reset_buffer_names() -> None:
    """Restart buffer numbering (called per compile).

    Buffer names only need to be unique within one generated node
    program; restarting per compile makes generated source text a
    deterministic function of the compile inputs, which the persistent
    compile cache's bit-identity guarantee relies on.
    """
    global _BUF_IDS
    _BUF_IDS = itertools.count()


# ---------------------------------------------------------------------------
# C-like pretty printer (Figures 7, 10, 13 style)
# ---------------------------------------------------------------------------

def _c_expr(e: BExpr) -> str:
    if isinstance(e, Lin):
        return str(e.expr)
    if isinstance(e, CeilDiv):
        return f"ceild({_c_expr(e.num)}, {e.den})"
    if isinstance(e, FloorDiv):
        return f"floord({_c_expr(e.num)}, {e.den})"
    if isinstance(e, MaxE):
        return "MAX(" + ", ".join(_c_expr(i) for i in e.items) + ")"
    if isinstance(e, MinE):
        return "MIN(" + ", ".join(_c_expr(i) for i in e.items) + ")"
    if isinstance(e, ModE):
        return f"(({_c_expr(e.num)}) % {e.den})"
    if isinstance(e, Combo):
        parts = []
        for coef, item in e.terms:
            parts.append(
                _c_expr(item) if coef == 1 else f"{coef} * ({_c_expr(item)})"
            )
        text = " + ".join(parts)
        if e.const:
            text += f" + {e.const}" if e.const > 0 else f" - {-e.const}"
        return text
    raise TypeError(e)


def _c_cond(cond: Cond) -> str:
    if isinstance(cond, CondGE):
        return f"{cond.expr} >= 0"
    if isinstance(cond, CondEQ):
        return f"{cond.expr} == 0"
    if isinstance(cond, CondDiv):
        return f"({cond.expr}) % {cond.modulus} == 0"
    if isinstance(cond, CondBounds):
        parts = []
        if cond.lower is not None:
            parts.append(f"{cond.var} >= {_c_expr(cond.lower)}")
        if cond.upper is not None:
            parts.append(f"{cond.var} <= {_c_expr(cond.upper)}")
        return " and ".join(parts) if parts else "true"
    if isinstance(cond, CondNeqPhys):
        l = ", ".join(_c_expr(e) for e in cond.left)
        r = ", ".join(_c_expr(e) for e in cond.right)
        return f"phys({l}) != phys({r})"
    raise TypeError(cond)


def emit_c(node: CNode, indent: int = 0) -> str:
    pad = "  " * indent
    if isinstance(node, CBlock):
        return "\n".join(
            emit_c(child, indent) for child in node.children if child
        )
    if isinstance(node, CFor):
        step = f" step {node.step}" if node.step != 1 else ""
        head = (
            f"{pad}for {node.var} = {_c_expr(node.lower)} to "
            f"{_c_expr(node.upper)}{step} do"
        )
        return head + "\n" + emit_c(node.body, indent + 1)
    if isinstance(node, CVirtLoop):
        myp = "myp" if node.rank == 1 else f"myp{node.dim}"
        pp = "P" if node.rank == 1 else f"P{node.dim}"
        head = (
            f"{pad}for {node.var} = {myp} + {pp} * "
            f"ceild({_c_expr(node.lower)} - {myp}, {pp}) to "
            f"{_c_expr(node.upper)} step {pp} do"
        )
        return head + "\n" + emit_c(node.body, indent + 1)
    if isinstance(node, CAssign):
        return f"{pad}{node.var} = {_c_expr(node.value)}"
    if isinstance(node, CGuard):
        conds = " and ".join(_c_cond(c) for c in node.conds) or "true"
        return f"{pad}if {conds} then\n" + emit_c(node.body, indent + 1)
    if isinstance(node, CCompute):
        return f"{pad}{node.stmt.text or node.stmt.name}"
    if isinstance(node, CNewBuffer):
        return f"{pad}{node.name} = new buffer"
    if isinstance(node, CPack):
        idx = "][".join(_c_expr(e) for e in node.indices)
        return f"{pad}{node.buffer}[idx++] = {node.array}[{idx}]"
    if isinstance(node, CSend):
        dst = ", ".join(_c_expr(e) for e in node.dest)
        verb = "put" if node.put else "send"
        return f"{pad}{verb} {node.buffer} to phys({dst})  /* {node.tag_label} */"
    if isinstance(node, CSendMulti):
        return (
            f"{pad}multicast {node.buffer} to {node.dest_set}"
            f"  /* {node.tag_label} */"
        )
    if isinstance(node, CCollectDest):
        dst = ", ".join(_c_expr(e) for e in node.dest)
        return f"{pad}{node.dest_set} += phys({dst})"
    if isinstance(node, CNewDestSet):
        return f"{pad}{node.name} = new destination set"
    if isinstance(node, CRecv):
        src = ", ".join(_c_expr(e) for e in node.src)
        verb = "fence; read" if node.fence else "receive"
        return (
            f"{pad}{verb} {node.buffer} from phys({src})"
            f"  /* {node.tag_label} */"
        )
    if isinstance(node, CUnpack):
        idx = "][".join(_c_expr(e) for e in node.indices)
        return f"{pad}{node.array}[{idx}] = {node.buffer}[idx++]"
    if isinstance(node, CComment):
        return f"{pad}/* {node.text} */"
    raise TypeError(node)


# ---------------------------------------------------------------------------
# Python emitter (executable on the runtime simulator)
# ---------------------------------------------------------------------------

def _san(name: str) -> str:
    """Sanitize a variable name for Python source."""
    return name.replace("$", "__")


def _py_expr(e: BExpr) -> str:
    if isinstance(e, Lin):
        parts = []
        for v, c in sorted(e.expr.terms()):
            parts.append(f"{c}*{_san(v)}")
        parts.append(str(e.expr.const))
        return "(" + " + ".join(parts) + ")"
    if isinstance(e, CeilDiv):
        return f"(-((-{_py_expr(e.num)}) // {e.den}))"
    if isinstance(e, FloorDiv):
        return f"({_py_expr(e.num)} // {e.den})"
    if isinstance(e, MaxE):
        return "max(" + ", ".join(_py_expr(i) for i in e.items) + ")"
    if isinstance(e, MinE):
        return "min(" + ", ".join(_py_expr(i) for i in e.items) + ")"
    if isinstance(e, ModE):
        return f"({_py_expr(e.num)} % {e.den})"
    if isinstance(e, Combo):
        parts = [f"{coef}*({_py_expr(item)})" for coef, item in e.terms]
        parts.append(str(e.const))
        return "(" + " + ".join(parts) + ")"
    raise TypeError(e)


def _py_phys(exprs: Sequence[BExpr], rank: int) -> str:
    dims = []
    for k, e in enumerate(exprs):
        pname = "_P" if rank == 1 else f"_P{k}"
        dims.append(f"({_py_expr(e)}) % {pname}")
    return "(" + ", ".join(dims) + ("," if len(dims) == 1 else "") + ")"


def _py_cond(cond: Cond, rank: int) -> str:
    if isinstance(cond, CondGE):
        return f"{_py_expr(Lin(cond.expr))} >= 0"
    if isinstance(cond, CondEQ):
        return f"{_py_expr(Lin(cond.expr))} == 0"
    if isinstance(cond, CondDiv):
        return f"{_py_expr(Lin(cond.expr))} % {cond.modulus} == 0"
    if isinstance(cond, CondBounds):
        parts = []
        if cond.lower is not None:
            parts.append(f"{_san(cond.var)} >= {_py_expr(cond.lower)}")
        if cond.upper is not None:
            parts.append(f"{_san(cond.var)} <= {_py_expr(cond.upper)}")
        return " and ".join(parts) if parts else "True"
    if isinstance(cond, CondNeqPhys):
        return f"{_py_phys(cond.left, rank)} != {_py_phys(cond.right, rank)}"
    raise TypeError(cond)


def _cat_payload(parts):
    """Flatten a pack buffer into one float64 payload vector.

    Pack buffers hold a mix of scalars (scalar packs) and numpy chunks
    (vectorized packs); the send boundary flattens them into a single
    contiguous vector whose element order and values match the
    historical scalar list exactly.  Injected into generated node
    programs as ``_cat``.
    """
    if isinstance(parts, np.ndarray):
        return parts
    if not parts:
        return np.empty(0, dtype=np.float64)
    if any(isinstance(p, np.ndarray) for p in parts):
        return np.concatenate(
            [np.atleast_1d(np.asarray(p, dtype=np.float64)) for p in parts]
        )
    return np.array(parts, dtype=np.float64)


def _flatten(block: CBlock) -> List[CNode]:
    out: List[CNode] = []
    for child in block.children:
        if isinstance(child, CBlock):
            out.extend(_flatten(child))
        else:
            out.append(child)
    return out


def _cond_vars(cond: Cond) -> frozenset:
    if isinstance(cond, (CondGE, CondEQ, CondDiv)):
        return cond.expr.variables()
    if isinstance(cond, CondBounds):
        out = frozenset({cond.var})
        if cond.lower is not None:
            out |= cond.lower.variables()
        if cond.upper is not None:
            out |= cond.upper.variables()
        return out
    if isinstance(cond, CondNeqPhys):
        out = frozenset()
        for e in cond.left + cond.right:
            out |= e.variables()
        return out
    raise TypeError(cond)


def _pin_value(conds: Sequence[Cond], v: str) -> Optional[LinExpr]:
    """The single value ``conds`` (all involving ``v``) pin ``v`` to.

    Recognizes the three shapes the generators emit -- an equality, a
    matching >=/<= pair, and degenerate bounds -- and returns the
    ``v``-free affine pin, or None when the conditions select anything
    other than one point.
    """
    pins: List[LinExpr] = []
    lowers: List[LinExpr] = []
    uppers: List[LinExpr] = []
    for cond in conds:
        if isinstance(cond, CondEQ):
            a = cond.expr.coeff(v)
            if a == 1:  # (v - E) == 0
                pins.append(LinExpr.var(v) - cond.expr)
            elif a == -1:  # (E - v) == 0
                pins.append(LinExpr.var(v) + cond.expr)
            else:
                return None
        elif isinstance(cond, CondGE):
            a = cond.expr.coeff(v)
            if a == 1:  # v >= L with L = v - expr
                lowers.append(LinExpr.var(v) - cond.expr)
            elif a == -1:  # v <= U with U = v + expr
                uppers.append(LinExpr.var(v) + cond.expr)
            else:
                return None
        elif isinstance(cond, CondBounds) and cond.var == v:
            if not isinstance(cond.lower, Lin) or not isinstance(
                cond.upper, Lin
            ):
                return None
            if cond.lower.expr is not cond.upper.expr:
                return None
            pins.append(cond.lower.expr)
        else:
            return None
    if lowers or uppers:
        if (
            len(lowers) != 1
            or len(uppers) != 1
            or lowers[0] is not uppers[0]  # LinExpr is hash-consed
        ):
            return None
        pins.append(lowers[0])
    if not pins:
        return None
    first = pins[0]
    if any(p is not first for p in pins[1:]):
        return None
    if first.coeff(v) != 0:
        return None
    return first


def _range_bounds(
    conds: Sequence[Cond], v: str, step_src: str
) -> Optional[Tuple[List[str], List[str]]]:
    """Fold conditions that only *restrict the range* of ``v`` into
    (lower, upper) bound sources, or None when any condition is not a
    pure range restriction.

    Lower bounds shift the first iterate, which is only grid-preserving
    for unit-stride loops; with any other step they are rejected and
    the caller falls back to pinning (or the scalar loop).
    """
    lowers: List[str] = []
    uppers: List[str] = []
    for cond in conds:
        if isinstance(cond, CondGE):
            a = cond.expr.coeff(v)
            if a == 1:  # v >= v - expr
                lowers.append(_py_expr(Lin(LinExpr.var(v) - cond.expr)))
            elif a == -1:  # v <= v + expr
                uppers.append(_py_expr(Lin(LinExpr.var(v) + cond.expr)))
            else:
                return None
        elif isinstance(cond, CondBounds) and cond.var == v:
            if cond.lower is not None:
                lowers.append(_py_expr(cond.lower))
            if cond.upper is not None:
                uppers.append(_py_expr(cond.upper))
        else:
            return None
    if lowers and step_src != "1":
        return None
    return lowers, uppers


def _lin_parts_lower(b: BExpr) -> List[LinExpr]:
    """Affine pieces ``L`` with ``lo >= L`` (lo = max of the parts)."""
    if isinstance(b, Lin):
        return [b.expr]
    if isinstance(b, MaxE):
        return [i.expr for i in b.items if isinstance(i, Lin)]
    return []


def _lin_parts_upper(b: BExpr) -> List[LinExpr]:
    """Affine pieces ``U`` with ``up <= U`` (up = min of the parts)."""
    if isinstance(b, Lin):
        return [b.expr]
    if isinstance(b, MinE):
        return [i.expr for i in b.items if isinstance(i, Lin)]
    return []


def _outside_range(V: LinExpr, lower: BExpr, upper: BExpr) -> bool:
    """Is iteration ``V`` provably outside ``[lower, upper]``?"""
    for L in _lin_parts_lower(lower):
        d = L - V
        if d.is_constant() and d.const >= 1:  # V <= L-1 < L <= lo
            return True
    for U in _lin_parts_upper(upper):
        d = V - U
        if d.is_constant() and d.const >= 1:  # V >= U+1 > U >= up
            return True
    return False


def _dim_separates(
    wd: LinExpr,
    rd: LinExpr,
    v: str,
    step: Optional[int],
    lower: BExpr,
    upper: BExpr,
) -> bool:
    """Does this subscript dimension prove ``write(i) != read(j)`` for
    every pair of block iterations ``i < j``?

    ``step`` is the loop step (None when symbolic, e.g. a virtual-loop
    stride of P).  For a virtual loop the *declared* bounds are passed:
    its effective range is a subset of [lower, upper], so every proof
    below remains sound.
    """
    aw, ar = wd.coeff(v), rd.coeff(v)
    bw = wd - LinExpr.var(v, aw)
    br = rd - LinExpr.var(v, ar)
    delta = br - bw
    if aw == 0 and ar == 0:
        # both loop-invariant: distinct iff the difference is a known
        # nonzero constant
        return delta.is_constant() and delta.const != 0
    if aw == ar:
        # equal strides: write(i) == read(j) forces aw*(i - j) == delta
        if not delta.is_constant():
            return False
        c = delta.const
        if c == 0:
            return True  # i == j only: no cross-iteration aliasing
        if c % aw != 0:
            return True  # no integer solution at all
        q = c // aw  # i = j + q
        if q > 0:
            return True  # writer strictly after reader: WAR, gather-safe
        if step is not None and step > 1 and q % step != 0:
            return True  # iterates are ``step`` apart; q unreachable
        return False
    if ar == 0:
        # read pinned to one location; only iteration V = delta/aw
        # writes it -- safe when V provably lies outside the block
        if delta.is_constant() and delta.const % aw != 0:
            return True
        try:
            V = delta.divide_exact(aw)
        except ValueError:
            return False
        return _outside_range(V, lower, upper)
    if aw == 0:
        # write pinned to one location; only iteration V = -delta/ar
        # reads it -- safe when V is outside the block, or V is the
        # first iterate (no writer precedes it)
        if delta.is_constant() and delta.const % ar != 0:
            return True
        try:
            V = (-delta).divide_exact(ar)
        except ValueError:
            return False
        if _outside_range(V, lower, upper):
            return True
        for L in _lin_parts_lower(lower):
            d = L - V
            if d.is_constant() and d.const >= 0:  # V <= L <= lo
                return True
        return False
    # distinct nonzero strides: a general Diophantine problem -- punt
    return False


def _compute_vectorizable(
    stmt: Statement,
    v: str,
    step: Optional[int],
    lower: BExpr,
    upper: BExpr,
) -> bool:
    """Is one gather-compute-scatter over ``v`` equal to the ascending
    scalar loop?

    Required: the write moves with ``v`` (distinct locations per
    iteration), and no iteration reads a location an *earlier*
    iteration wrote (the gather happens before the scatter, so such a
    read would see the old value).  A read identical to the write is
    safe: scalar iterations read their own location before writing it,
    exactly like the gather.  Reads of other arrays never alias the
    write.  See DESIGN.md §10.
    """
    write = stmt.lhs
    if all(idx.coeff(v) == 0 for idx in write.indices):
        return False
    wname = write.array.name
    for read in stmt.reads:
        if read.array.name != wname:
            continue
        if len(read.indices) == len(write.indices) and all(
            r is w for r, w in zip(read.indices, write.indices)
        ):
            continue
        if len(read.indices) != len(write.indices):
            return False
        if not any(
            _dim_separates(wd, rd, v, step, lower, upper)
            for wd, rd in zip(write.indices, read.indices)
        ):
            return False
    return True


def _numpy_safe(b: BExpr) -> bool:
    """Can ``b`` be evaluated with numpy arrays bound to its variables?

    Everything the emitter produces maps to ``+``/``*``/``//``/``%``
    except max/min, which emit the Python builtins (ambiguous truth
    value on arrays).
    """
    if isinstance(b, Lin):
        return True
    if isinstance(b, (CeilDiv, FloorDiv, ModE)):
        return _numpy_safe(b.num)
    if isinstance(b, Combo):
        return all(_numpy_safe(e) for _, e in b.terms)
    return False


class PyEmitter:
    """Emit a CAST tree as the body of a node program.

    The generated function has signature ``node(proc)`` and relies on
    the :class:`repro.runtime.Processor` API: ``proc.params``,
    ``proc.stmt``, ``proc.myp``, ``proc.arrays``, ``proc.execute_stmt``,
    ``proc.execute_block``, ``proc.send``, ``proc.multicast``, and the
    ``proc.finish`` completion hook (emitted as the final statement so
    the runtime's progress monitor can tell a cleanly finished node
    program from a dead thread when diagnosing deadlocks).

    Node programs are **generator functions**: receives are emitted as
    ``yield ('recv'|'recv_mc', src, tag)`` requests so the same program
    runs under the threaded backend (whose driver answers each request
    with a blocking receive) and the cooperative scheduler (which parks
    the coroutine).  Programs with no receives get a dead ``yield`` to
    keep the calling convention uniform.

    With ``vectorize=True`` (the default), an innermost loop whose body
    is a single guarded compute, pack, or unpack -- plus any number of
    guards that *pin* the loop variable to one iteration (send/receive
    fragments placed at a specific step, as in LU's pivot broadcast) --
    is emitted as whole-range numpy operations: computes become one
    ``proc.execute_block`` call per pin-free span (legality proved by
    :func:`_compute_vectorizable`), packs gather one chunk, unpacks
    scatter one slice.  Everything else falls back to the scalar loop,
    which remains bit-identical to the historical emission.
    """

    def __init__(
        self, rank: int, params: Sequence[str], vectorize: bool = True
    ):
        self.rank = rank
        self.params = list(params)
        self.vectorize = vectorize
        self.lines: List[str] = []
        self._stmt_handles: Dict[Statement, str] = {}
        self._uid = itertools.count()

    def header(self) -> List[str]:
        out = ["def node(proc):"]
        for p in self.params:
            out.append(f"    {_san(p)} = proc.params[{p!r}]")
        for k in range(self.rank):
            pname = "_P" if self.rank == 1 else f"_P{k}"
            out.append(f"    {pname} = proc.pdims[{k}]")
            myp = "myp" if self.rank == 1 else f"myp{k}"
            out.append(f"    {myp} = proc.myp[{k}]")
        out.append("    arrays = proc.arrays")
        out.append("    _env = dict(proc.params)")
        for stmt, handle in self._stmt_handles.items():
            out.append(f"    {handle} = proc.stmt({stmt.name!r})")
        return out

    def emit(self, node: CNode, indent: int) -> None:
        pad = "    " * indent
        if isinstance(node, CBlock):
            emitted = False
            for child in node.children:
                before = len(self.lines)
                self.emit(child, indent)
                emitted = emitted or len(self.lines) > before
            if not emitted:
                self.lines.append(pad + "pass")
            return
        if isinstance(node, CFor):
            if (
                self.vectorize
                and node.step > 0
                and self._try_vectorize(node, indent)
            ):
                return
            self.lines.append(
                f"{pad}for {_san(node.var)} in range({_py_expr(node.lower)}, "
                f"{_py_expr(node.upper)} + 1, {node.step}):"
            )
            self.emit(node.body, indent + 1)
            return
        if isinstance(node, CVirtLoop):
            if self.vectorize and self._try_vectorize(node, indent):
                return
            myp = "myp" if node.rank == 1 else f"myp{node.dim}"
            pp = "_P" if node.rank == 1 else f"_P{node.dim}"
            lo = _py_expr(node.lower)
            self.lines.append(
                f"{pad}for {_san(node.var)} in range("
                f"{myp} + {pp} * (-((-({lo} - {myp})) // {pp})), "
                f"{_py_expr(node.upper)} + 1, {pp}):"
            )
            self.emit(node.body, indent + 1)
            return
        if isinstance(node, CAssign):
            self.lines.append(
                f"{pad}{_san(node.var)} = {_py_expr(node.value)}"
            )
            return
        if isinstance(node, CGuard):
            conds = " and ".join(
                _py_cond(c, self.rank) for c in node.conds
            ) or "True"
            self.lines.append(f"{pad}if {conds}:")
            self.emit(node.body, indent + 1)
            return
        if isinstance(node, CCompute):
            stmt = node.stmt
            handle = self._handle(stmt)
            for w in stmt.iter_vars:
                self.lines.append(f"{pad}_env[{w!r}] = {_san(w)}")
            self.lines.append(f"{pad}proc.execute_stmt({handle}, _env)")
            return
        if isinstance(node, CNewBuffer):
            self.lines.append(f"{pad}{node.name} = []")
            return
        if isinstance(node, CPack):
            idx = ", ".join(_py_expr(e) for e in node.indices)
            comma = "," if len(node.indices) == 1 else ""
            self.lines.append(
                f"{pad}{node.buffer}.append("
                f"arrays[{node.array!r}][({idx}{comma})])"
            )
            return
        if isinstance(node, CSend):
            dst = _py_phys(node.dest, self.rank)
            tag = self._tag(node.tag_label, node.tag_exprs)
            op = "put" if node.put else "send"
            self.lines.append(
                f"{pad}proc.{op}({dst}, {tag}, _cat({node.buffer}))"
            )
            return
        if isinstance(node, CNewDestSet):
            self.lines.append(f"{pad}{node.name} = set()")
            return
        if isinstance(node, CCollectDest):
            dst = _py_phys(node.dest, self.rank)
            if node.exclude_self:
                self.lines.append(f"{pad}if {dst} != proc.myp:")
                self.lines.append(f"{pad}    {node.dest_set}.add({dst})")
            else:
                self.lines.append(f"{pad}{node.dest_set}.add({dst})")
            return
        if isinstance(node, CSendMulti):
            tag = self._tag(node.tag_label, node.tag_exprs)
            self.lines.append(
                f"{pad}proc.multicast(sorted({node.dest_set}), {tag}, "
                f"_cat({node.buffer}))"
            )
            return
        if isinstance(node, CRecv):
            src = _py_phys(node.src, self.rank)
            tag = self._tag(node.tag_label, node.tag_exprs)
            fn = "recv_mc" if node.multicast else "recv"
            if node.fence:
                fn += "_fence"
            self.lines.append(
                f"{pad}{node.buffer} = yield ({fn!r}, {src}, {tag})"
            )
            self.lines.append(f"{pad}{node.buffer}_i = 0")
            return
        if isinstance(node, CUnpack):
            idx = ", ".join(_py_expr(e) for e in node.indices)
            comma = "," if len(node.indices) == 1 else ""
            self.lines.append(
                f"{pad}arrays[{node.array!r}][({idx}{comma})] = "
                f"{node.buffer}[{node.buffer}_i]"
            )
            self.lines.append(f"{pad}{node.buffer}_i += 1")
            return
        if isinstance(node, CComment):
            self.lines.append(f"{pad}# {node.text}")
            return
        raise TypeError(node)

    # -- vectorization ------------------------------------------------------

    def _handle(self, stmt: Statement) -> str:
        handle = self._stmt_handles.get(stmt)
        if handle is None:
            handle = f"_s{len(self._stmt_handles)}"
            self._stmt_handles[stmt] = handle
        return handle

    def _try_vectorize(self, node, indent: int) -> bool:
        """Attempt whole-range emission of an innermost loop; True when
        emitted (the caller then skips the scalar loop)."""
        v = node.var
        if isinstance(node, CVirtLoop):
            step_int = None
            pp = "_P" if node.rank == 1 else f"_P{node.dim}"
            myp = "myp" if node.rank == 1 else f"myp{node.dim}"
            lo_src = (
                f"{myp} + {pp} * "
                f"(-((-({_py_expr(node.lower)} - {myp})) // {pp}))"
            )
            step_src = pp
        else:
            step_int = node.step
            lo_src = _py_expr(node.lower)
            step_src = str(step_int)
        hi_src = _py_expr(node.upper)
        items = _flatten(node.body)
        if any(isinstance(x, (CPack, CUnpack)) for x in items):
            return self._try_pack_loop(
                node, items, v, step_src, lo_src, hi_src, indent
            )
        return self._try_compute_loop(
            node, items, v, step_int, step_src, lo_src, hi_src, indent
        )

    def _try_compute_loop(
        self, node, items, v, step_int, step_src, lo_src, hi_src, indent
    ) -> bool:
        """Pattern: an innermost loop whose body is one (guarded)
        compute plus guards pinning ``v`` to single iterations.

        Emits ``execute_block`` over each pin-free span; at every
        in-range pin the *original* body is re-emitted scalar with the
        loop variable bound to the pin, preserving intra-iteration
        order between the compute and the pinned fragments (and
        re-checking every guard).
        """
        vector: List[Tuple[Statement, List[Cond], Optional[tuple]]] = []
        pinned: List[Tuple[CNode, LinExpr]] = []
        comments: List[CComment] = []
        for child in items:
            if isinstance(child, CComment):
                comments.append(child)
            elif isinstance(child, CCompute):
                vector.append((child.stmt, [], None))
            elif isinstance(child, CGuard):
                vconds = [c for c in child.conds if v in _cond_vars(c)]
                vfree = [c for c in child.conds if v not in _cond_vars(c)]
                inner = [
                    x
                    for x in _flatten(child.body)
                    if not isinstance(x, CComment)
                ]
                is_compute = (
                    len(inner) == 1 and isinstance(inner[0], CCompute)
                )
                if is_compute and not vconds:
                    vector.append((inner[0].stmt, vfree, None))
                    continue
                if is_compute:
                    # a guard that only clips v's range tightens the
                    # block bounds instead of forcing the scalar loop
                    clip = _range_bounds(vconds, v, step_src)
                    if clip is not None:
                        vector.append((inner[0].stmt, vfree, clip))
                        continue
                pin = _pin_value(vconds, v)
                if pin is None:
                    return False
                pinned.append((child, pin))
            else:
                return False
        if len(vector) != 1:
            return False
        stmt, guard, clip = vector[0]
        if v not in stmt.iter_vars:
            return False
        if not _compute_vectorizable(
            stmt, v, step_int, node.lower, node.upper
        ):
            return False

        u = next(self._uid)
        pad = "    " * indent
        out = self.lines.append
        out(f"{pad}_vlo{u} = {lo_src}")
        out(f"{pad}_vhi{u} = {hi_src}")
        out(f"{pad}if _vlo{u} <= _vhi{u}:")
        p1 = pad + "    "
        for c in comments:
            out(f"{p1}# {c.text}")
        lo_clip = hi_clip = None
        if clip is not None:
            lowers, uppers = clip
            if lowers:
                lo_clip = f"_clo{u}"
                src = (
                    lowers[0]
                    if len(lowers) == 1
                    else f"max({', '.join(lowers)})"
                )
                out(f"{p1}{lo_clip} = {src}")
            if uppers:
                hi_clip = f"_chi{u}"
                src = (
                    uppers[0]
                    if len(uppers) == 1
                    else f"min({', '.join(uppers)})"
                )
                out(f"{p1}{hi_clip} = {src}")

        def block_call(lo: str, hi: str, at: int) -> None:
            qad = "    " * at
            if guard:
                conds = " and ".join(_py_cond(c, self.rank) for c in guard)
                out(f"{qad}if {conds}:")
                qad += "    "
            for w in stmt.iter_vars:
                if w != v:
                    out(f"{qad}_env[{w!r}] = {_san(w)}")
            if lo_clip is not None:
                lo = f"max({lo}, {lo_clip})"
            if hi_clip is not None:
                hi = f"min({hi}, {hi_clip})"
            out(
                f"{qad}proc.execute_block({self._handle(stmt)}, {v!r}, "
                f"{lo}, {hi}, _env, {step_src})"
            )

        if pinned:
            out(f"{p1}_pins{u} = []")
            for _child, pin in pinned:
                out(f"{p1}_pv{u} = {_py_expr(Lin(pin))}")
                out(
                    f"{p1}if _vlo{u} <= _pv{u} <= _vhi{u} and "
                    f"(_pv{u} - _vlo{u}) % {step_src} == 0:"
                )
                out(f"{p1}    _pins{u}.append(_pv{u})")
            out(f"{p1}_cur{u} = _vlo{u}")
            out(f"{p1}for _pin{u} in sorted(set(_pins{u})):")
            p2 = pad + "        "
            block_call(f"_cur{u}", f"_pin{u} - 1", indent + 2)
            out(f"{p2}{_san(v)} = _pin{u}")
            self.emit(node.body, indent + 2)
            out(f"{p2}_cur{u} = _pin{u} + {step_src}")
            block_call(f"_cur{u}", f"_vhi{u}", indent + 1)
        else:
            block_call(f"_vlo{u}", f"_vhi{u}", indent + 1)
        # the scalar loop leaves its variable bound to the last iterate
        if step_src == "1":
            out(f"{p1}{_san(v)} = _vhi{u}")
        else:
            out(
                f"{p1}{_san(v)} = _vlo{u} + "
                f"((_vhi{u} - _vlo{u}) // {step_src}) * {step_src}"
            )
        return True

    def _try_pack_loop(
        self, node, items, v, step_src, lo_src, hi_src, indent
    ) -> bool:
        """Pattern: an innermost loop packing (or unpacking) one array
        element per iteration, with optional index temporaries.

        Binds the loop variable to ``np.arange`` and lets the index
        arithmetic broadcast: the pack gathers the whole chunk in one
        fancy-indexing read, the unpack scatters one payload slice.
        Unpacks additionally require a provably injective index so the
        scatter hits ``n`` distinct locations.
        """
        assigns: List[CAssign] = []
        comments: List[CComment] = []
        leaf = None
        for child in items:
            if isinstance(child, CComment):
                comments.append(child)
            elif isinstance(child, CAssign):
                if leaf is not None:
                    return False
                assigns.append(child)
            elif isinstance(child, (CPack, CUnpack)):
                if leaf is not None:
                    return False
                leaf = child
            else:
                return False
        if leaf is None:
            return False
        # locals that become arrays once v is bound to an arange
        vector_vars = {v}
        lin_env: Dict[str, LinExpr] = {}
        for a in assigns:
            if a.value.variables() & vector_vars:
                if not _numpy_safe(a.value):
                    return False
                vector_vars.add(a.var)
            if isinstance(a.value, Lin):
                lin_env[a.var] = a.value.expr.substitute(lin_env)
            else:
                lin_env.pop(a.var, None)
        if not any(
            idx.variables() & vector_vars for idx in leaf.indices
        ):
            return False  # the "gather" would be one scalar, not a chunk
        for idx in leaf.indices:
            if idx.variables() & vector_vars and not _numpy_safe(idx):
                return False
        if isinstance(leaf, CUnpack):
            if not any(
                isinstance(idx, Lin)
                and idx.expr.substitute(lin_env).coeff(v) != 0
                for idx in leaf.indices
            ):
                return False  # cannot prove the scatter is injective

        u = next(self._uid)
        pad = "    " * indent
        out = self.lines.append
        out(f"{pad}_vlo{u} = {lo_src}")
        out(f"{pad}_vhi{u} = {hi_src}")
        out(f"{pad}if _vlo{u} <= _vhi{u}:")
        p1 = pad + "    "
        for c in comments:
            out(f"{p1}# {c.text}")
        out(f"{p1}{_san(v)} = _np.arange(_vlo{u}, _vhi{u} + 1, {step_src})")
        for a in assigns:
            out(f"{p1}{_san(a.var)} = {_py_expr(a.value)}")
        idx = ", ".join(_py_expr(e) for e in leaf.indices)
        comma = "," if len(leaf.indices) == 1 else ""
        if isinstance(leaf, CPack):
            out(
                f"{p1}{leaf.buffer}.append("
                f"arrays[{leaf.array!r}][({idx}{comma})])"
            )
        else:
            out(f"{p1}_vn{u} = (_vhi{u} - _vlo{u}) // {step_src} + 1")
            out(
                f"{p1}arrays[{leaf.array!r}][({idx}{comma})] = _np.asarray("
                f"{leaf.buffer}[{leaf.buffer}_i:{leaf.buffer}_i + _vn{u}], "
                f"dtype=_np.float64)"
            )
            out(f"{p1}{leaf.buffer}_i += _vn{u}")
        # rebind the loop variable to its final scalar value
        if step_src == "1":
            out(f"{p1}{_san(v)} = _vhi{u}")
        else:
            out(
                f"{p1}{_san(v)} = _vlo{u} + "
                f"((_vhi{u} - _vlo{u}) // {step_src}) * {step_src}"
            )
        return True

    # -- assembly -----------------------------------------------------------

    @staticmethod
    def _tag(label: str, exprs: Sequence[BExpr]) -> str:
        parts = [repr(label)] + [_py_expr(e) for e in exprs]
        return "(" + ", ".join(parts) + ("," if len(parts) == 1 else "") + ")"

    def source(self, tree: CNode) -> str:
        self._stmt_handles = {}
        self._uid = itertools.count()
        has_recv = self._prescan(tree)
        self.lines = []
        self.emit(tree, 1)
        body = self.lines
        self.lines = self.header()
        if not has_recv:
            self.lines.append(
                "    if False:  # no receives; stay a generator "
                "for the schedulers"
            )
            self.lines.append("        yield None")
        self.lines.extend(body)
        self.lines.append("    proc.finish()")
        return "\n".join(self.lines) + "\n"

    def _prescan(self, node: CNode) -> bool:
        """Collect statement handles in tree order; True if any CRecv."""
        has_recv = False
        if isinstance(node, CBlock):
            for child in node.children:
                has_recv |= self._prescan(child)
        elif isinstance(node, (CFor, CVirtLoop, CGuard)):
            has_recv = self._prescan(node.body)
        elif isinstance(node, CCompute):
            self._handle(node.stmt)
        elif isinstance(node, CRecv):
            has_recv = True
        return has_recv


def compile_node_program(
    tree: CNode,
    rank: int,
    params: Sequence[str],
    vectorize: bool = True,
):
    """Compile a CAST tree into a generator function ``node(proc)``."""
    emitter = PyEmitter(rank, params, vectorize=vectorize)
    return node_from_source(emitter.source(tree))


def node_from_source(src: str):
    """(Re)build the generator function ``node(proc)`` from its source.

    The compile cache stores node programs as source text (closures do
    not pickle); loading a cached :class:`~repro.codegen.spmd.SPMD`
    re-executes the stored text through this function, which is exactly
    how the original was built -- same namespace, same behavior.
    """
    namespace: dict = {"_np": np, "_cat": _cat_payload}
    exec(compile(src, "<node-program>", "exec"), namespace)  # noqa: S102
    fn = namespace["node"]
    fn.__source__ = src
    return fn
