"""The generated-code AST ("CAST") and its two emitters.

Code generation produces a small imperative tree: loops with
quasi-affine bounds, guards, degenerate assignments, statement
executions, message packs/sends and receives/unpacks.  The same tree
pretty-prints as C-like text (for inspection and for reproducing the
paper's Figures 7, 10 and 13) and emits executable Python (run on the
:mod:`repro.runtime` machine simulator).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple, Union

from ..ir import Statement
from ..polyhedra import (
    BExpr,
    CeilDiv,
    Combo,
    FloorDiv,
    Lin,
    LinExpr,
    MaxE,
    MinE,
    ModE,
)

# -- conditions ---------------------------------------------------------------


@dataclass(frozen=True)
class CondGE:
    """``expr >= 0``."""

    expr: LinExpr


@dataclass(frozen=True)
class CondEQ:
    """``expr == 0``."""

    expr: LinExpr


@dataclass(frozen=True)
class CondDiv:
    """``expr mod modulus == 0``."""

    expr: LinExpr
    modulus: int


@dataclass(frozen=True)
class CondBounds:
    """``lower <= var <= upper`` with generated bound expressions."""

    var: str
    lower: Optional[BExpr]
    upper: Optional[BExpr]


@dataclass(frozen=True)
class CondNeqPhys:
    """``pi(left) != pi(right)``: different physical processors.

    Implements the dynamic part of Section 6.1.3 (cyclic-emulation
    redundancy): messages between virtual processors folded onto the
    same physical processor are skipped on both sides.
    """

    left: Tuple[BExpr, ...]
    right: Tuple[BExpr, ...]


Cond = Union[CondGE, CondEQ, CondDiv, CondBounds, CondNeqPhys]


# -- nodes ---------------------------------------------------------------------


class CNode:
    pass


@dataclass
class CBlock(CNode):
    children: List[CNode] = field(default_factory=list)


@dataclass
class CFor(CNode):
    var: str
    lower: BExpr
    upper: BExpr
    body: CBlock
    step: int = 1


@dataclass
class CVirtLoop(CNode):
    """Iterate the virtual processors of this physical processor:

        for var = myp + P*ceil((lower - myp)/P) to upper step P

    ``dim`` selects the processor dimension (myp{dim} / P{dim} at
    runtime; the 1-D case uses ``myp`` and ``P``).
    """

    var: str
    lower: BExpr
    upper: BExpr
    dim: int
    rank: int
    body: CBlock


@dataclass
class CAssign(CNode):
    var: str
    value: BExpr


@dataclass
class CGuard(CNode):
    conds: List[Cond]
    body: CBlock


@dataclass
class CCompute(CNode):
    stmt: Statement


@dataclass
class CNewBuffer(CNode):
    name: str


@dataclass
class CPack(CNode):
    buffer: str
    array: str
    indices: Tuple[BExpr, ...]


@dataclass
class CSend(CNode):
    """Send ``buffer`` to the physical processor hosting virtual
    ``dest``; the tag identifies the message across the whole run."""

    buffer: str
    dest: Tuple[BExpr, ...]
    tag_label: str
    tag_exprs: Tuple[BExpr, ...]


@dataclass
class CSendMulti(CNode):
    """Multicast: send one buffer to every distinct physical processor
    collected in ``dest_set`` (a runtime set variable)."""

    buffer: str
    dest_set: str
    tag_label: str
    tag_exprs: Tuple[BExpr, ...]


@dataclass
class CCollectDest(CNode):
    """Add pi(dest) to a destination set (multicast address gathering).

    ``exclude_self``: skip when the destination is this processor.
    """

    dest_set: str
    dest: Tuple[BExpr, ...]
    exclude_self: bool = True


@dataclass
class CNewDestSet(CNode):
    name: str


@dataclass
class CRecv(CNode):
    """Receive into ``buffer`` from the physical host of virtual ``src``.

    ``multicast`` marks messages addressed per physical processor: the
    runtime caches them so every virtual processor emulated here can
    consume the same payload (Section 6.1.3's one-message-per-physical
    optimization).
    """

    buffer: str
    src: Tuple[BExpr, ...]
    tag_label: str
    tag_exprs: Tuple[BExpr, ...]
    multicast: bool = False


@dataclass
class CUnpack(CNode):
    buffer: str
    array: str
    indices: Tuple[BExpr, ...]


@dataclass
class CComment(CNode):
    text: str


_BUF_IDS = itertools.count()


def fresh_buffer() -> str:
    return f"buf{next(_BUF_IDS)}"


# ---------------------------------------------------------------------------
# C-like pretty printer (Figures 7, 10, 13 style)
# ---------------------------------------------------------------------------

def _c_expr(e: BExpr) -> str:
    if isinstance(e, Lin):
        return str(e.expr)
    if isinstance(e, CeilDiv):
        return f"ceild({_c_expr(e.num)}, {e.den})"
    if isinstance(e, FloorDiv):
        return f"floord({_c_expr(e.num)}, {e.den})"
    if isinstance(e, MaxE):
        return "MAX(" + ", ".join(_c_expr(i) for i in e.items) + ")"
    if isinstance(e, MinE):
        return "MIN(" + ", ".join(_c_expr(i) for i in e.items) + ")"
    if isinstance(e, ModE):
        return f"(({_c_expr(e.num)}) % {e.den})"
    if isinstance(e, Combo):
        parts = []
        for coef, item in e.terms:
            parts.append(
                _c_expr(item) if coef == 1 else f"{coef} * ({_c_expr(item)})"
            )
        text = " + ".join(parts)
        if e.const:
            text += f" + {e.const}" if e.const > 0 else f" - {-e.const}"
        return text
    raise TypeError(e)


def _c_cond(cond: Cond) -> str:
    if isinstance(cond, CondGE):
        return f"{cond.expr} >= 0"
    if isinstance(cond, CondEQ):
        return f"{cond.expr} == 0"
    if isinstance(cond, CondDiv):
        return f"({cond.expr}) % {cond.modulus} == 0"
    if isinstance(cond, CondBounds):
        parts = []
        if cond.lower is not None:
            parts.append(f"{cond.var} >= {_c_expr(cond.lower)}")
        if cond.upper is not None:
            parts.append(f"{cond.var} <= {_c_expr(cond.upper)}")
        return " and ".join(parts) if parts else "true"
    if isinstance(cond, CondNeqPhys):
        l = ", ".join(_c_expr(e) for e in cond.left)
        r = ", ".join(_c_expr(e) for e in cond.right)
        return f"phys({l}) != phys({r})"
    raise TypeError(cond)


def emit_c(node: CNode, indent: int = 0) -> str:
    pad = "  " * indent
    if isinstance(node, CBlock):
        return "\n".join(
            emit_c(child, indent) for child in node.children if child
        )
    if isinstance(node, CFor):
        step = f" step {node.step}" if node.step != 1 else ""
        head = (
            f"{pad}for {node.var} = {_c_expr(node.lower)} to "
            f"{_c_expr(node.upper)}{step} do"
        )
        return head + "\n" + emit_c(node.body, indent + 1)
    if isinstance(node, CVirtLoop):
        myp = "myp" if node.rank == 1 else f"myp{node.dim}"
        pp = "P" if node.rank == 1 else f"P{node.dim}"
        head = (
            f"{pad}for {node.var} = {myp} + {pp} * "
            f"ceild({_c_expr(node.lower)} - {myp}, {pp}) to "
            f"{_c_expr(node.upper)} step {pp} do"
        )
        return head + "\n" + emit_c(node.body, indent + 1)
    if isinstance(node, CAssign):
        return f"{pad}{node.var} = {_c_expr(node.value)}"
    if isinstance(node, CGuard):
        conds = " and ".join(_c_cond(c) for c in node.conds) or "true"
        return f"{pad}if {conds} then\n" + emit_c(node.body, indent + 1)
    if isinstance(node, CCompute):
        return f"{pad}{node.stmt.text or node.stmt.name}"
    if isinstance(node, CNewBuffer):
        return f"{pad}{node.name} = new buffer"
    if isinstance(node, CPack):
        idx = "][".join(_c_expr(e) for e in node.indices)
        return f"{pad}{node.buffer}[idx++] = {node.array}[{idx}]"
    if isinstance(node, CSend):
        dst = ", ".join(_c_expr(e) for e in node.dest)
        return f"{pad}send {node.buffer} to phys({dst})  /* {node.tag_label} */"
    if isinstance(node, CSendMulti):
        return (
            f"{pad}multicast {node.buffer} to {node.dest_set}"
            f"  /* {node.tag_label} */"
        )
    if isinstance(node, CCollectDest):
        dst = ", ".join(_c_expr(e) for e in node.dest)
        return f"{pad}{node.dest_set} += phys({dst})"
    if isinstance(node, CNewDestSet):
        return f"{pad}{node.name} = new destination set"
    if isinstance(node, CRecv):
        src = ", ".join(_c_expr(e) for e in node.src)
        return (
            f"{pad}receive {node.buffer} from phys({src})"
            f"  /* {node.tag_label} */"
        )
    if isinstance(node, CUnpack):
        idx = "][".join(_c_expr(e) for e in node.indices)
        return f"{pad}{node.array}[{idx}] = {node.buffer}[idx++]"
    if isinstance(node, CComment):
        return f"{pad}/* {node.text} */"
    raise TypeError(node)


# ---------------------------------------------------------------------------
# Python emitter (executable on the runtime simulator)
# ---------------------------------------------------------------------------

def _san(name: str) -> str:
    """Sanitize a variable name for Python source."""
    return name.replace("$", "__")


def _py_expr(e: BExpr) -> str:
    if isinstance(e, Lin):
        parts = []
        for v, c in sorted(e.expr.terms()):
            parts.append(f"{c}*{_san(v)}")
        parts.append(str(e.expr.const))
        return "(" + " + ".join(parts) + ")"
    if isinstance(e, CeilDiv):
        return f"(-((-{_py_expr(e.num)}) // {e.den}))"
    if isinstance(e, FloorDiv):
        return f"({_py_expr(e.num)} // {e.den})"
    if isinstance(e, MaxE):
        return "max(" + ", ".join(_py_expr(i) for i in e.items) + ")"
    if isinstance(e, MinE):
        return "min(" + ", ".join(_py_expr(i) for i in e.items) + ")"
    if isinstance(e, ModE):
        return f"({_py_expr(e.num)} % {e.den})"
    if isinstance(e, Combo):
        parts = [f"{coef}*({_py_expr(item)})" for coef, item in e.terms]
        parts.append(str(e.const))
        return "(" + " + ".join(parts) + ")"
    raise TypeError(e)


def _py_phys(exprs: Sequence[BExpr], rank: int) -> str:
    dims = []
    for k, e in enumerate(exprs):
        pname = "_P" if rank == 1 else f"_P{k}"
        dims.append(f"({_py_expr(e)}) % {pname}")
    return "(" + ", ".join(dims) + ("," if len(dims) == 1 else "") + ")"


def _py_cond(cond: Cond, rank: int) -> str:
    if isinstance(cond, CondGE):
        return f"{_py_expr(Lin(cond.expr))} >= 0"
    if isinstance(cond, CondEQ):
        return f"{_py_expr(Lin(cond.expr))} == 0"
    if isinstance(cond, CondDiv):
        return f"{_py_expr(Lin(cond.expr))} % {cond.modulus} == 0"
    if isinstance(cond, CondBounds):
        parts = []
        if cond.lower is not None:
            parts.append(f"{_san(cond.var)} >= {_py_expr(cond.lower)}")
        if cond.upper is not None:
            parts.append(f"{_san(cond.var)} <= {_py_expr(cond.upper)}")
        return " and ".join(parts) if parts else "True"
    if isinstance(cond, CondNeqPhys):
        return f"{_py_phys(cond.left, rank)} != {_py_phys(cond.right, rank)}"
    raise TypeError(cond)


class PyEmitter:
    """Emit a CAST tree as the body of a node program.

    The generated function has signature ``node(proc)`` and relies on
    the :class:`repro.runtime.Processor` API: ``proc.params``,
    ``proc.myp``, ``proc.arrays``, ``proc.execute``, ``proc.send``,
    ``proc.multicast``, ``proc.recv``, ``proc.recv_mc``, and the
    ``proc.finish`` completion hook (emitted as the final statement so
    the runtime's progress monitor can tell a cleanly finished node
    program from a dead thread when diagnosing deadlocks).
    """

    def __init__(self, rank: int, params: Sequence[str]):
        self.rank = rank
        self.params = list(params)
        self.lines: List[str] = []

    def header(self) -> List[str]:
        out = ["def node(proc):"]
        for p in self.params:
            out.append(f"    {_san(p)} = proc.params[{p!r}]")
        for k in range(self.rank):
            pname = "_P" if self.rank == 1 else f"_P{k}"
            out.append(f"    {pname} = proc.pdims[{k}]")
            myp = "myp" if self.rank == 1 else f"myp{k}"
            out.append(f"    {myp} = proc.myp[{k}]")
        out.append("    arrays = proc.arrays")
        return out

    def emit(self, node: CNode, indent: int) -> None:
        pad = "    " * indent
        if isinstance(node, CBlock):
            emitted = False
            for child in node.children:
                before = len(self.lines)
                self.emit(child, indent)
                emitted = emitted or len(self.lines) > before
            if not emitted:
                self.lines.append(pad + "pass")
            return
        if isinstance(node, CFor):
            self.lines.append(
                f"{pad}for {_san(node.var)} in range({_py_expr(node.lower)}, "
                f"{_py_expr(node.upper)} + 1, {node.step}):"
            )
            self.emit(node.body, indent + 1)
            return
        if isinstance(node, CVirtLoop):
            myp = "myp" if node.rank == 1 else f"myp{node.dim}"
            pp = "_P" if node.rank == 1 else f"_P{node.dim}"
            lo = _py_expr(node.lower)
            self.lines.append(
                f"{pad}for {_san(node.var)} in range("
                f"{myp} + {pp} * (-((-({lo} - {myp})) // {pp})), "
                f"{_py_expr(node.upper)} + 1, {pp}):"
            )
            self.emit(node.body, indent + 1)
            return
        if isinstance(node, CAssign):
            self.lines.append(
                f"{pad}{_san(node.var)} = {_py_expr(node.value)}"
            )
            return
        if isinstance(node, CGuard):
            conds = " and ".join(
                _py_cond(c, self.rank) for c in node.conds
            ) or "True"
            self.lines.append(f"{pad}if {conds}:")
            self.emit(node.body, indent + 1)
            return
        if isinstance(node, CCompute):
            stmt = node.stmt
            env_items = ", ".join(
                f"{v!r}: {_san(v)}" for v in stmt.iter_vars
            )
            self.lines.append(
                f"{pad}proc.execute({stmt.name!r}, {{{env_items}}})"
            )
            return
        if isinstance(node, CNewBuffer):
            self.lines.append(f"{pad}{node.name} = []")
            return
        if isinstance(node, CPack):
            idx = ", ".join(_py_expr(e) for e in node.indices)
            comma = "," if len(node.indices) == 1 else ""
            self.lines.append(
                f"{pad}{node.buffer}.append("
                f"arrays[{node.array!r}][({idx}{comma})])"
            )
            return
        if isinstance(node, CSend):
            dst = _py_phys(node.dest, self.rank)
            tag = self._tag(node.tag_label, node.tag_exprs)
            self.lines.append(
                f"{pad}proc.send({dst}, {tag}, {node.buffer})"
            )
            return
        if isinstance(node, CNewDestSet):
            self.lines.append(f"{pad}{node.name} = set()")
            return
        if isinstance(node, CCollectDest):
            dst = _py_phys(node.dest, self.rank)
            if node.exclude_self:
                self.lines.append(f"{pad}if {dst} != proc.myp:")
                self.lines.append(f"{pad}    {node.dest_set}.add({dst})")
            else:
                self.lines.append(f"{pad}{node.dest_set}.add({dst})")
            return
        if isinstance(node, CSendMulti):
            tag = self._tag(node.tag_label, node.tag_exprs)
            self.lines.append(
                f"{pad}proc.multicast(sorted({node.dest_set}), {tag}, "
                f"{node.buffer})"
            )
            return
        if isinstance(node, CRecv):
            src = _py_phys(node.src, self.rank)
            tag = self._tag(node.tag_label, node.tag_exprs)
            fn = "recv_mc" if node.multicast else "recv"
            self.lines.append(
                f"{pad}{node.buffer} = proc.{fn}({src}, {tag})"
            )
            self.lines.append(f"{pad}{node.buffer}_i = 0")
            return
        if isinstance(node, CUnpack):
            idx = ", ".join(_py_expr(e) for e in node.indices)
            comma = "," if len(node.indices) == 1 else ""
            self.lines.append(
                f"{pad}arrays[{node.array!r}][({idx}{comma})] = "
                f"{node.buffer}[{node.buffer}_i]"
            )
            self.lines.append(f"{pad}{node.buffer}_i += 1")
            return
        if isinstance(node, CComment):
            self.lines.append(f"{pad}# {node.text}")
            return
        raise TypeError(node)

    @staticmethod
    def _tag(label: str, exprs: Sequence[BExpr]) -> str:
        parts = [repr(label)] + [_py_expr(e) for e in exprs]
        return "(" + ", ".join(parts) + ("," if len(parts) == 1 else "") + ")"

    def source(self, tree: CNode) -> str:
        self.lines = self.header()
        self.emit(tree, 1)
        self.lines.append("    proc.finish()")
        return "\n".join(self.lines) + "\n"


def compile_node_program(tree: CNode, rank: int, params: Sequence[str]):
    """Compile a CAST tree into a callable ``node(proc)``."""
    emitter = PyEmitter(rank, params)
    src = emitter.source(tree)
    namespace: dict = {}
    exec(compile(src, "<node-program>", "exec"), namespace)  # noqa: S102
    fn = namespace["node"]
    fn.__source__ = src
    return fn
