"""Turn scanned polyhedra into generated-code trees.

``scan_to_cast`` converts a :class:`repro.polyhedra.ScanResult` into
loops/assignments/guards.  The first ``skip`` levels can be folded into
guard conditions instead of loops -- that is how communication code is
merged into an enclosing computation structure (Section 5.4): the
enclosing loops already enumerate those variables, so the fragment only
needs to check membership.

``scan_to_cast_with_boundary`` additionally splits the nest at a
*message boundary*: the caller decides what happens there (allocate a
buffer and receive before the content loops; pack inside them and send
after), which is how Figure 10's aggregated communication code is
produced.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..polyhedra import ScanLoop, ScanResult
from ..polyhedra.stats import STATS
from .cast import (
    CAssign,
    CBlock,
    CFor,
    CGuard,
    CNode,
    Cond,
    CondBounds,
    CondDiv,
    CondEQ,
    CondGE,
    CVirtLoop,
)


def guards_from_system(system) -> List[Cond]:
    conds: List[Cond] = []
    for eq in system.equalities:
        conds.append(CondEQ(eq))
    for ineq in system.inequalities:
        conds.append(CondGE(ineq))
    STATS.codegen_guards_emitted += len(conds)
    return conds


def prefix_guards(loops: Sequence[ScanLoop]) -> List[Cond]:
    """Membership conditions for levels already enumerated outside."""
    conds: List[Cond] = []
    for loop in loops:
        if loop.is_degenerate():
            if loop.div_guard is not None:
                expr, mod = loop.div_guard
                conds.append(CondDiv(expr, mod))
            conds.append(
                CondBounds(loop.var, loop.assignment, loop.assignment)
            )
        else:
            conds.append(
                CondBounds(loop.var, loop.lower_expr(), loop.upper_expr())
            )
    return conds


def _wrap_level(
    loop: ScanLoop,
    inner: CNode,
    virt_dims: Dict[str, Tuple[int, int]],
) -> CNode:
    STATS.codegen_loops_emitted += 1
    inner_block = inner if isinstance(inner, CBlock) else CBlock([inner])
    if loop.var in virt_dims:
        # A virtual-processor level must check residence even when it
        # is pinned to a single value: the single-value stride loop
        # executes exactly when that virtual processor lives here.
        dim, rank = virt_dims[loop.var]
        if loop.is_degenerate():
            node: CNode = CVirtLoop(
                loop.var,
                loop.assignment,
                loop.assignment,
                dim,
                rank,
                inner_block,
            )
            if loop.div_guard is not None:
                expr, mod = loop.div_guard
                node = CGuard([CondDiv(expr, mod)], CBlock([node]))
            return node
        return CVirtLoop(
            loop.var,
            loop.lower_expr(),
            loop.upper_expr(),
            dim,
            rank,
            inner_block,
        )
    if loop.is_degenerate():
        block = CBlock([CAssign(loop.var, loop.assignment), inner_block])
        if loop.div_guard is not None:
            expr, mod = loop.div_guard
            return CGuard([CondDiv(expr, mod)], block)
        return block
    return CFor(
        loop.var,
        loop.lower_expr(),
        loop.upper_expr(),
        inner_block,
        step=loop.step,
    )


def scan_to_cast(
    result: ScanResult,
    body: CNode,
    skip: int = 0,
    virt_dims: Optional[Dict[str, Tuple[int, int]]] = None,
) -> CNode:
    """Build the loop nest for a scan result, with ``body`` innermost.

    ``skip``: how many leading levels become guard conditions (their
    variables are bound by enclosing code).
    ``virt_dims``: maps a loop variable to ``(dim, rank)``; that level
    strides over this physical processor's virtual processors.
    """
    virt_dims = virt_dims or {}
    conds = guards_from_system(result.guards)
    conds.extend(prefix_guards(result.loops[:skip]))

    def build(level: int) -> CNode:
        if level == len(result.loops):
            return body
        return _wrap_level(result.loops[level], build(level + 1), virt_dims)

    tree = build(skip)
    block = tree if isinstance(tree, CBlock) else CBlock([tree])
    if conds:
        return CGuard(conds, block)
    return block


def scan_to_cast_with_boundary(
    result: ScanResult,
    skip: int,
    boundary: int,
    at_boundary: Callable[[Callable[[CNode], CNode]], List[CNode]],
    virt_dims: Optional[Dict[str, Tuple[int, int]]] = None,
) -> CNode:
    """Split the generated nest at a message boundary.

    Levels ``skip..boundary`` become loops as usual.  At ``boundary``
    (counted over all scan levels, skipped ones included) the builder
    calls ``at_boundary(build_content)``; ``build_content(leaf)``
    produces the content loops (levels ``boundary..end``) with ``leaf``
    innermost, so the caller can lay out, e.g.::

        buf = new buffer
        <content loops packing into buf>
        send buf
    """
    virt_dims = virt_dims or {}
    conds = guards_from_system(result.guards)
    conds.extend(prefix_guards(result.loops[:skip]))

    def build_content(leaf: CNode) -> CNode:
        def rec(level: int) -> CNode:
            if level == len(result.loops):
                return leaf
            return _wrap_level(result.loops[level], rec(level + 1), virt_dims)

        return rec(boundary)

    def build(level: int) -> CNode:
        if level == boundary:
            return CBlock(at_boundary(build_content))
        return _wrap_level(result.loops[level], build(level + 1), virt_dims)

    tree = build(skip)
    block = tree if isinstance(tree, CBlock) else CBlock([tree])
    if conds:
        return CGuard(conds, block)
    return block
