"""Local address spaces (paper Section 5.5).

A processor touches only part of each array, so per-processor storage
should cover just that part.  The paper's simple scheme: allocate the
smallest rectangular bounding box covering every element the processor
reads or writes, obtained by scanning the touched set lexicographically
in (p, a_k, i) order -- the bounds on a_k, as expressions of p, are the
box for dimension k.  Global-to-local translation subtracts the box's
lower corner.

The executable runtime keeps globally-addressed arrays (NaN-poisoned
outside the owned region) because that turns addressing bugs into
detectable wrong values; this module supplies the allocation analysis
itself -- box expressions, per-processor sizes, and the savings report
that the memory benchmark regenerates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

from ..decomp import CompDecomp
from ..ir import Access, Array, Program
from ..polyhedra import (
    BExpr,
    EmptyPolyhedronError,
    LinExpr,
    System,
    scan,
)


@dataclass
class DimBox:
    """Bounds of one array dimension as functions of the processor."""

    lower: BExpr
    upper: BExpr

    def extent(self, env: Mapping[str, int]) -> int:
        return max(0, self.upper.evaluate(env) - self.lower.evaluate(env) + 1)


@dataclass
class LocalBox:
    """The bounding box of one array on one (symbolic) processor."""

    array: Array
    dims: Tuple[DimBox, ...]

    def shape(self, env: Mapping[str, int]) -> Tuple[int, ...]:
        return tuple(d.extent(env) for d in self.dims)

    def size(self, env: Mapping[str, int]) -> int:
        total = 1
        for d in self.dims:
            total *= d.extent(env)
        return total

    def translate(
        self, element: Tuple[int, ...], env: Mapping[str, int]
    ) -> Tuple[int, ...]:
        """Global-to-local address translation: subtract the lower corner."""
        return tuple(
            a - d.lower.evaluate(env) for a, d in zip(element, self.dims)
        )

    def describe(self) -> str:
        dims = " x ".join(
            f"[{d.lower} .. {d.upper}]" for d in self.dims
        )
        return f"{self.array.name}: {dims}"


def _touched_system(
    comp: CompDecomp,
    access: Access,
    pvars: Tuple[str, ...],
    a_names: Tuple[str, ...],
    assumptions: System,
) -> System:
    """{ a | exists i : (i, p) in C and a = f(i) } before projection."""
    system = comp.system(pvars).intersect(assumptions)
    for name, expr in zip(a_names, access.indices):
        system.add_eq(LinExpr.var(name), expr)
    return system


def bounding_box(
    program: Program,
    comps: Dict[str, CompDecomp],
    array: Array,
    pvars: Optional[Tuple[str, ...]] = None,
    writes_only: bool = False,
) -> Optional[LocalBox]:
    """The union bounding box over every access to ``array``.

    Scans each access's touched set in (p, a_k, i) order; the per-access
    boxes are merged by taking min/max of the bound expressions (as the
    paper does for multiple accesses to the same array).  Returns None
    when no statement touches the array.

    ``writes_only``: box only the written elements -- the paper's LU
    treatment (Section 7), where reads of remote data live in a
    communication buffer instead of the local array.
    """
    space = next(iter(comps.values())).space
    if pvars is None:
        pvars = tuple(f"p{k}" for k in range(space.rank))
    a_names = tuple(f"a{k}" for k in range(array.rank))
    per_dim_lowers: List[List[BExpr]] = [[] for _ in range(array.rank)]
    per_dim_uppers: List[List[BExpr]] = [[] for _ in range(array.rank)]
    touched_any = False
    for stmt in program.statements():
        accesses = [stmt.lhs] if writes_only else [stmt.lhs, *stmt.reads]
        for access in accesses:
            if access.array is not array:
                continue
            system = _touched_system(
                comps[stmt.name], access, pvars, a_names,
                program.assumptions,
            )
            for k, a_name in enumerate(a_names):
                order = list(pvars) + [a_name] + list(stmt.iter_vars) + [
                    n for n in a_names if n != a_name
                ]
                try:
                    result = scan(
                        system, order, context=program.assumptions
                    )
                except EmptyPolyhedronError:
                    continue
                level = result.loops[len(pvars)]
                if level.is_degenerate():
                    per_dim_lowers[k].append(level.assignment)
                    per_dim_uppers[k].append(level.assignment)
                else:
                    per_dim_lowers[k].append(level.lower_expr())
                    per_dim_uppers[k].append(level.upper_expr())
                touched_any = True
    if not touched_any:
        return None
    from ..polyhedra import MaxE, MinE, simplify_bexpr

    dims = []
    for k in range(array.rank):
        lowers = per_dim_lowers[k]
        uppers = per_dim_uppers[k]
        low = lowers[0] if len(lowers) == 1 else simplify_bexpr(
            MinE(tuple(lowers))
        )
        high = uppers[0] if len(uppers) == 1 else simplify_bexpr(
            MaxE(tuple(uppers))
        )
        dims.append(DimBox(low, high))
    return LocalBox(array, tuple(dims))


@dataclass
class MemoryReport:
    """Global vs. local allocation sizes for one machine configuration."""

    array_sizes: Dict[str, int]
    local_sizes: Dict[Tuple[int, ...], Dict[str, int]]

    def global_total(self) -> int:
        return sum(self.array_sizes.values())

    def max_local_total(self) -> int:
        return max(
            sum(sizes.values()) for sizes in self.local_sizes.values()
        )

    def savings_factor(self) -> float:
        """How much smaller the biggest local footprint is vs. global."""
        return self.global_total() / max(1, self.max_local_total())


def memory_report(
    program: Program,
    comps: Dict[str, CompDecomp],
    params: Mapping[str, int],
    writes_only: bool = False,
) -> MemoryReport:
    """Evaluate per-virtual-processor bounding boxes numerically."""
    space = next(iter(comps.values())).space
    pvars = tuple(f"p{k}" for k in range(space.rank))
    boxes = {
        name: bounding_box(
            program, comps, array, pvars, writes_only=writes_only
        )
        for name, array in program.arrays.items()
    }
    array_sizes = {
        name: int(_prod(array.shape(params)))
        for name, array in program.arrays.items()
    }
    local_sizes: Dict[Tuple[int, ...], Dict[str, int]] = {}
    vshape = space.virtual_shape(params)
    coords = [()]
    for extent in vshape:
        coords = [c + (v,) for c in coords for v in range(extent)]
    for coord in coords:
        env = dict(params)
        env.update(zip(pvars, coord))
        local_sizes[coord] = {
            name: (box.size(env) if box is not None else 0)
            for name, box in boxes.items()
        }
    return MemoryReport(array_sizes, local_sizes)


def _prod(shape) -> int:
    total = 1
    for s in shape:
        total *= s
    return total
