"""Code generation: CAST trees, polyhedron-scan conversion, SPMD
assembly, and the C-like / Python emitters."""

from .cast import (
    CAssign,
    CBlock,
    CCompute,
    CFor,
    CGuard,
    CNode,
    CondBounds,
    CondDiv,
    CondEQ,
    CondGE,
    CondNeqPhys,
    CPack,
    CRecv,
    CSend,
    CSendMulti,
    CUnpack,
    CVirtLoop,
    compile_node_program,
    emit_c,
)
from .genloops import scan_to_cast, scan_to_cast_with_boundary
from .spmd import SPMD, SPMDGenerationError, SPMDOptions, generate_spmd

__all__ = [
    "CAssign",
    "CBlock",
    "CCompute",
    "CFor",
    "CGuard",
    "CNode",
    "CondBounds",
    "CondDiv",
    "CondEQ",
    "CondGE",
    "CondNeqPhys",
    "CPack",
    "CRecv",
    "CSend",
    "CSendMulti",
    "CUnpack",
    "CVirtLoop",
    "SPMD",
    "SPMDGenerationError",
    "SPMDOptions",
    "compile_node_program",
    "emit_c",
    "generate_spmd",
    "scan_to_cast",
    "scan_to_cast_with_boundary",
]
