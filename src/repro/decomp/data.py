"""Data decompositions (paper Definition 1, Figure 4).

A data decomposition relates array elements to the (virtual) processors
holding a copy:

    D = { (a, p) | B*p - d_l  <=  U(a - t)  <=  B*(p+1) - 1 + d_h }

Each processor dimension k applies an affine form (a row of the
extended unimodular matrix ``U``, shifted by ``t``) of the array
indices, a block size ``B_k``, and overlap amounts ``d_l``/``d_h``.
A dimension with no rule replicates the array along that processor axis
(zero row of ``U`` -- Figure 4(a)).  Overlap expresses the replicated
stencil borders of Section 2.2.1; shifts, skews and reversal come from
the affine row itself (Figures 4(c) and 4(d)).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Mapping, Optional, Sequence, Tuple

from ..ir import Access, Array
from ..polyhedra import LinExpr, System
from .space import Extent, ProcSpace


def dim_placeholders(rank: int) -> Tuple[str, ...]:
    """Canonical placeholder names for array dimensions inside rules."""
    return tuple(f"$dim{k}" for k in range(rank))


@dataclass(frozen=True)
class DimRule:
    """How one processor dimension carves the array.

    ``expr``: affine form of the array indices (over placeholders
    ``$dim0..``), already including any shift ``t``.
    ``block``: block size ``B_k`` (positive int).
    ``overlap_low``/``overlap_high``: ``d_l``/``d_h`` border replication.
    """

    expr: LinExpr
    block: int = 1
    overlap_low: int = 0
    overlap_high: int = 0

    def value_for(self, index_exprs: Sequence[LinExpr]) -> LinExpr:
        env = {
            ph: e
            for ph, e in zip(dim_placeholders(len(index_exprs)), index_exprs)
        }
        return self.expr.substitute(env)

    def constrain(self, out: System, proc: str, value: LinExpr) -> None:
        p = LinExpr.var(proc)
        out.add_le(p * self.block - self.overlap_low, value)
        out.add_le(value, p * self.block + self.block - 1 + self.overlap_high)

    def owner_range(self, value: int) -> Tuple[int, int]:
        """Inclusive virtual-processor range owning an element value."""
        b = self.block
        low = -(-(value - b + 1 - self.overlap_high) // b)  # ceil
        high = (value + self.overlap_low) // b
        return low, high


@dataclass
class DataDecomp:
    """A data decomposition for one array onto a processor space."""

    array: Array
    space: ProcSpace
    rules: Tuple[Optional[DimRule], ...]  # one per processor dimension
    name: str = ""

    def __post_init__(self):
        if len(self.rules) != self.space.rank:
            raise ValueError("one rule (or None) per processor dimension")

    # -- polyhedral view ----------------------------------------------------

    def system(
        self, index_names: Sequence[str], proc_names: Sequence[str]
    ) -> System:
        """D as a System over array-index and processor variables."""
        out = self.space.virtual_domain(proc_names)
        out = out.intersect(self.array.index_domain(tuple(index_names)))
        index_exprs = [LinExpr.var(n) for n in index_names]
        for proc, rule in zip(proc_names, self.rules):
            if rule is None:
                continue  # replicated along this processor dimension
            rule.constrain(out, proc, rule.value_for(index_exprs))
        return out

    def membership(
        self, access: Access, proc_names: Sequence[str]
    ) -> System:
        """D composed with an access function: constraints over the
        access's iteration variables and the processor variables."""
        out = self.space.virtual_domain(proc_names)
        for proc, rule in zip(proc_names, self.rules):
            if rule is None:
                continue
            rule.constrain(out, proc, rule.value_for(access.indices))
        return out

    # -- concrete view (runtime placement / validation) -------------------------

    def owners(
        self, element: Tuple[int, ...], params: Mapping[str, int]
    ) -> List[Tuple[int, ...]]:
        """All virtual processors holding a copy of ``element``."""
        index_exprs = [LinExpr.const_expr(v) for v in element]
        vshape = self.space.virtual_shape(params)
        per_dim: List[range] = []
        for k, rule in enumerate(self.rules):
            if rule is None:
                per_dim.append(range(0, vshape[k]))
                continue
            value = rule.value_for(index_exprs).evaluate(params)
            low, high = rule.owner_range(value)
            low = max(low, 0)
            high = min(high, vshape[k] - 1)
            per_dim.append(range(low, high + 1))
        out: List[Tuple[int, ...]] = [()]
        for rng in per_dim:
            out = [prefix + (p,) for prefix in out for p in rng]
        return out

    def owns(
        self,
        element: Tuple[int, ...],
        proc: Tuple[int, ...],
        params: Mapping[str, int],
    ) -> bool:
        return tuple(proc) in {tuple(o) for o in self.owners(element, params)}

    def is_replicated(self) -> bool:
        return any(rule is None for rule in self.rules) or any(
            rule is not None and (rule.overlap_low or rule.overlap_high)
            for rule in self.rules
        )

    def describe(self) -> str:
        parts = []
        for k, rule in enumerate(self.rules):
            if rule is None:
                parts.append(f"p{k}: replicated")
            else:
                over = (
                    f" overlap[{rule.overlap_low},{rule.overlap_high}]"
                    if rule.overlap_low or rule.overlap_high
                    else ""
                )
                parts.append(f"p{k}: block {rule.block} of ({rule.expr}){over}")
        label = self.name or self.array.name
        return f"D[{label}]: " + "; ".join(parts)


# ---------------------------------------------------------------------------
# Constructors for the common shapes (Figure 4)
# ---------------------------------------------------------------------------

def block(
    array: Array,
    block_sizes: Sequence[int],
    dims: Optional[Sequence[int]] = None,
    pdims=None,
    overlap: Sequence[Tuple[int, int]] = (),
    shift: Sequence[int] = (),
    reverse: Sequence[bool] = (),
) -> DataDecomp:
    """Contiguous blocks of the chosen array dimensions (Figure 4(b)).

    ``dims[k]`` is the array dimension mapped to processor dimension k
    (default: the first q dimensions).  ``overlap`` gives per-dimension
    ``(d_l, d_h)``; ``shift`` a per-dimension offset ``t``; ``reverse``
    flips a dimension (U row of -1).
    """
    q = len(block_sizes)
    dims = list(dims) if dims is not None else list(range(q))
    rules = []
    vdims = []
    for k in range(q):
        d_l, d_h = overlap[k] if k < len(overlap) else (0, 0)
        t = shift[k] if k < len(shift) else 0
        ph = dim_placeholders(array.rank)[dims[k]]
        expr = LinExpr.var(ph)
        if k < len(reverse) and reverse[k]:
            expr = (array.dims[dims[k]] - 1) - expr
        expr = expr - t
        rules.append(
            DimRule(
                expr,
                block=block_sizes[k],
                overlap_low=d_l,
                overlap_high=d_h,
            )
        )
        # extent: ceil((size + t) / B) covers every shifted block index
        vdims.append(Extent(array.dims[dims[k]] + abs(t), block_sizes[k]))
    if pdims is None:
        space = (
            ProcSpace.linear(vdims[0]) if q == 1 else ProcSpace.grid(vdims)
        )
    else:
        space = ProcSpace(vdims, pdims)
    return DataDecomp(
        array, space, tuple(rules), name=f"block{tuple(block_sizes)}"
    )


def cyclic(
    array: Array,
    dims: Optional[Sequence[int]] = None,
    pdims=None,
) -> DataDecomp:
    """Cyclic distribution: virtual processor k owns row/element k.

    The paper's LU example: D = { (a, p) | p <= U*a < p + 1 } -- block
    size 1 onto a virtual space as large as the array dimension, folded
    cyclically onto the physical machine.
    """
    return block(
        array, [1] * (1 if dims is None else len(dims)), dims=dims, pdims=pdims
    )


def block_cyclic(
    array: Array,
    block_sizes: Sequence[int],
    dims: Optional[Sequence[int]] = None,
    pdims=None,
) -> DataDecomp:
    """Blocks dealt round-robin: block size b onto a virtual space of
    ceil(size/b) processors, folded cyclically."""
    return block(array, block_sizes, dims=dims, pdims=pdims)


def replicated(array: Array, space: Optional[ProcSpace] = None) -> DataDecomp:
    """Full replication (Figure 4(a)): every processor owns everything."""
    if space is None:
        space = ProcSpace.linear(LinExpr.var("P"), LinExpr.var("P"))
    return DataDecomp(
        array, space, tuple([None] * space.rank), name="replicated"
    )


def skewed(
    array: Array,
    rows: Sequence[Sequence[int]],
    block_sizes: Sequence[int],
    shifts: Sequence[int] = (),
    pdims=None,
    extents: Optional[Sequence] = None,
) -> DataDecomp:
    """General U-matrix decomposition (Figure 4(d)): processor dimension
    k holds blocks of the affine form ``rows[k] . a - shifts[k]``."""
    q = len(rows)
    phs = dim_placeholders(array.rank)
    rules = []
    vdims = []
    for k in range(q):
        expr = LinExpr({phs[d]: c for d, c in enumerate(rows[k])})
        t = shifts[k] if k < len(shifts) else 0
        expr = expr - t
        rules.append(DimRule(expr, block=block_sizes[k]))
        if extents is not None:
            vdims.append(Extent.coerce(extents[k]))
        else:
            # safe default: bound by the sum of |row| * dim sizes
            bound = LinExpr.const_expr(1)
            for d, c in enumerate(rows[k]):
                if c:
                    bound = bound + array.dims[d] * abs(c)
            vdims.append(Extent(bound, block_sizes[k]))
    space = ProcSpace(vdims, pdims) if pdims is not None else (
        ProcSpace.linear(vdims[0]) if q == 1 else ProcSpace.grid(vdims)
    )
    return DataDecomp(array, space, tuple(rules), name="skewed")
