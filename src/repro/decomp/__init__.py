"""Decompositions: data (Definition 1), computation (Definition 2),
virtual processor spaces, and the owner-computes derivation (Theorem 1).
"""

from .computation import (
    CompDecomp,
    CompRule,
    block_loop,
    onto,
    owner_computes,
)
from .data import (
    DataDecomp,
    DimRule,
    block,
    block_cyclic,
    cyclic,
    dim_placeholders,
    replicated,
    skewed,
)
from .space import Extent, ProcSpace

__all__ = [
    "CompDecomp",
    "CompRule",
    "DataDecomp",
    "DimRule",
    "Extent",
    "ProcSpace",
    "block",
    "block_cyclic",
    "block_loop",
    "cyclic",
    "dim_placeholders",
    "onto",
    "owner_computes",
    "replicated",
    "skewed",
]
