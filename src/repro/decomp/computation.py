"""Computation decompositions (paper Definition 2, Theorem 1).

A computation decomposition maps each dynamic iteration of a statement
to the unique virtual processor executing it:

    C = { (i, p) | B*p  <=  U(i - t)  <=  B*(p+1) - 1 }

Unlike data decompositions, an iteration has exactly one owner (no
overlap, no replication).  Theorem 1 derives C from a (non-replicated)
data decomposition via the owner-computes rule; the paper's point is
that C is the primary object -- it need not come from any D.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Sequence, Tuple

from ..ir import Statement
from ..polyhedra import LinExpr, System
from .data import DataDecomp
from .space import Extent, ProcSpace


@dataclass(frozen=True)
class CompRule:
    """One processor dimension: ``B*p <= expr(i) <= B*p + B - 1``.

    ``expr`` is an affine form of the statement's iteration variables
    (their plain names, no placeholders).
    """

    expr: LinExpr
    block: int = 1

    def constrain(self, out: System, proc: str, suffix: str = "") -> None:
        value = self.expr.rename(
            {v: v + suffix for v in self.expr.variables()}
        ) if suffix else self.expr
        p = LinExpr.var(proc)
        out.add_le(p * self.block, value)
        out.add_le(value, p * self.block + self.block - 1)

    def owner_of(self, env: Mapping[str, int]) -> int:
        return self.expr.evaluate(env) // self.block


@dataclass
class CompDecomp:
    """A computation decomposition for one statement."""

    stmt: Statement
    space: ProcSpace
    rules: Tuple[CompRule, ...]
    name: str = ""

    def __post_init__(self):
        if len(self.rules) != self.space.rank:
            raise ValueError("one rule per processor dimension")

    def system(
        self, proc_names: Sequence[str], iter_suffix: str = ""
    ) -> System:
        """C over (possibly suffixed) iteration vars and processor vars.

        Includes the statement's iteration domain and the virtual
        processor domain.
        """
        if iter_suffix:
            domain, _ = self.stmt.domain_renamed(iter_suffix)
        else:
            domain = self.stmt.domain()
        out = domain.intersect(self.space.virtual_domain(proc_names))
        for proc, rule in zip(proc_names, self.rules):
            rule.constrain(out, proc, iter_suffix)
        return out

    def placement_only(
        self, proc_names: Sequence[str], iter_suffix: str = ""
    ) -> System:
        """Just the B*p <= U(i-t) < B*(p+1) band, without the domains."""
        out = System()
        for proc, rule in zip(proc_names, self.rules):
            rule.constrain(out, proc, iter_suffix)
        return out

    def owner(
        self, env: Mapping[str, int]
    ) -> Tuple[int, ...]:
        """The virtual processor executing the iteration in ``env``
        (which must bind the statement's iteration variables and any
        parameters the rules mention)."""
        return tuple(rule.owner_of(env) for rule in self.rules)

    def describe(self) -> str:
        parts = [
            f"p{k}: block {rule.block} of ({rule.expr})"
            if rule.block != 1
            else f"p{k} = {rule.expr}"
            for k, rule in enumerate(self.rules)
        ]
        label = self.name or self.stmt.name
        return f"C[{label}]: " + "; ".join(parts)


# ---------------------------------------------------------------------------
# Constructors
# ---------------------------------------------------------------------------

def _extent_for_expr(stmt: Statement, expr: LinExpr, block: int) -> Extent:
    """Extent of floor(expr/block) + 1 when expr is a single loop var."""
    names = list(expr.variables())
    if len(names) == 1 and expr.coeff(names[0]) == 1:
        for loop in stmt.loops:
            if loop.var == names[0]:
                return Extent(loop.upper + 1 - expr.const + 0, block)
    raise ValueError(
        "cannot infer the virtual extent for this rule; pass space="
    )


def onto(
    stmt: Statement,
    exprs: Sequence[LinExpr],
    space: Optional[ProcSpace] = None,
    pdims=None,
) -> CompDecomp:
    """``p_k == exprs[k](i)``: project iterations onto processor dims.

    The LU decomposition of Section 7 is ``onto(s, [i2])``: virtual
    processor k executes every iteration with i2 == k.
    """
    rules = tuple(CompRule(LinExpr.coerce(e), 1) for e in exprs)
    if space is None:
        vdims = [_extent_for_expr(stmt, r.expr, 1) for r in rules]
        space = (
            ProcSpace.linear(vdims[0], pdims[0] if pdims else None)
            if len(vdims) == 1
            else ProcSpace.grid(vdims, pdims)
        )
    return CompDecomp(stmt, space, rules, name="onto")


def block_loop(
    stmt: Statement,
    loop_vars: Sequence[str],
    block_sizes: Sequence[int],
    space: Optional[ProcSpace] = None,
    pdims=None,
) -> CompDecomp:
    """Block-distribute the chosen loops: ``B*p <= i < B*(p+1)``.

    Figure 7's computation decomposition is
    ``block_loop(stmt, ["i"], [32])``.
    """
    rules = tuple(
        CompRule(LinExpr.var(v), b) for v, b in zip(loop_vars, block_sizes)
    )
    if space is None:
        vdims = [
            _extent_for_expr(stmt, r.expr, r.block) for r in rules
        ]
        space = (
            ProcSpace.linear(vdims[0], pdims[0] if pdims else None)
            if len(vdims) == 1
            else ProcSpace.grid(vdims, pdims)
        )
    return CompDecomp(stmt, space, rules, name="block_loop")


def owner_computes(stmt: Statement, decomp: DataDecomp) -> CompDecomp:
    """Theorem 1: derive C from D via the owner-computes rule.

    ``C = { (i, p) | exists a in A : (a, p) in D and a = f_w(i) }``.
    Requires the written data not to be replicated (the theorem's
    stated precondition -- Section 2.2.1 discusses why replication
    breaks the rule).
    """
    if stmt.lhs.array is not decomp.array:
        raise ValueError(
            f"{stmt.name} writes {stmt.lhs.array.name}, not "
            f"{decomp.array.name}"
        )
    if decomp.is_replicated():
        raise ValueError(
            "owner-computes requires a non-replicated data decomposition"
            " (Theorem 1)"
        )
    rules = []
    for rule in decomp.rules:
        value = rule.value_for(stmt.lhs.indices)
        rules.append(CompRule(value, rule.block))
    return CompDecomp(
        stmt, decomp.space, tuple(rules), name=f"owner({decomp.name})"
    )
