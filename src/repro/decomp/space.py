"""Processor spaces: virtual processor arrays and the map to physical.

Section 4.1: computation and data decompositions map onto a *virtual*
processor array; each dimension is folded onto the physical processor
array cyclically (``pi(p) = p mod P``) whenever the physical extent is
smaller.  Keeping the extents symbolic (``P``) lets generated SPMD code
run on any machine size, exactly like the paper's Figure 13 output.

A virtual extent is ``ceil(numerator / divisor)`` with an affine
numerator -- that form covers both plain extents (divisor 1) and the
``ceil(size / block)`` extents of blocked decompositions, while the
virtual-domain constraint stays affine: ``divisor * p <= numerator - 1``.
"""

from __future__ import annotations

from typing import Mapping, Sequence, Tuple, Union

from ..polyhedra import LinExpr, System

ExtentLike = Union[LinExpr, int, Tuple[Union[LinExpr, int], int]]


class Extent:
    """``ceil(numerator / divisor)`` with affine numerator, divisor >= 1."""

    __slots__ = ("numerator", "divisor")

    def __init__(self, numerator, divisor: int = 1):
        self.numerator = LinExpr.coerce(numerator)
        self.divisor = int(divisor)
        if self.divisor < 1:
            raise ValueError("extent divisor must be positive")

    @staticmethod
    def coerce(value: ExtentLike) -> "Extent":
        if isinstance(value, Extent):
            return value
        if isinstance(value, tuple):
            return Extent(value[0], value[1])
        return Extent(value)

    def evaluate(self, params: Mapping[str, int]) -> int:
        return -(-self.numerator.evaluate(params) // self.divisor)

    def domain_upper(self, proc: str) -> LinExpr:
        """The constraint ``p <= extent - 1`` as ``expr >= 0``."""
        return self.numerator - 1 - LinExpr.var(proc, self.divisor)

    def __str__(self) -> str:
        if self.divisor == 1:
            return str(self.numerator)
        return f"ceil(({self.numerator}) / {self.divisor})"


class ProcSpace:
    """A q-dimensional virtual processor space with physical extents."""

    def __init__(
        self,
        vdims: Sequence[ExtentLike],
        pdims: Sequence[Union[LinExpr, int]],
    ):
        self.vdims: Tuple[Extent, ...] = tuple(
            Extent.coerce(v) for v in vdims
        )
        self.pdims: Tuple[LinExpr, ...] = tuple(
            LinExpr.coerce(p) for p in pdims
        )
        if len(self.vdims) != len(self.pdims):
            raise ValueError("virtual/physical ranks differ")

    @property
    def rank(self) -> int:
        return len(self.vdims)

    def virtual_var_names(self, suffix: str = "") -> Tuple[str, ...]:
        return tuple(f"p{k}{suffix}" for k in range(self.rank))

    def virtual_domain(self, names: Sequence[str]) -> System:
        """``0 <= p_k <= vdims[k] - 1`` for each dimension (affine)."""
        out = System()
        for name, extent in zip(names, self.vdims):
            out.add_inequality(LinExpr.var(name))
            out.add_inequality(extent.domain_upper(name))
        return out

    def is_cyclic(self, params: Mapping[str, int]) -> Tuple[bool, ...]:
        """Per dimension: does the virtual extent exceed the physical?"""
        return tuple(
            v.evaluate(params) > p.evaluate(params)
            for v, p in zip(self.vdims, self.pdims)
        )

    def to_physical(
        self, virtual: Tuple[int, ...], params: Mapping[str, int]
    ) -> Tuple[int, ...]:
        """pi(p): fold each dimension modulo its physical extent."""
        return tuple(
            v % pd.evaluate(params) for v, pd in zip(virtual, self.pdims)
        )

    def physical_shape(self, params: Mapping[str, int]) -> Tuple[int, ...]:
        return tuple(pd.evaluate(params) for pd in self.pdims)

    def physical_count(self, params: Mapping[str, int]) -> int:
        total = 1
        for pd in self.pdims:
            total *= pd.evaluate(params)
        return total

    def virtual_shape(self, params: Mapping[str, int]) -> Tuple[int, ...]:
        return tuple(v.evaluate(params) for v in self.vdims)

    def virtual_count(self, params: Mapping[str, int]) -> int:
        total = 1
        for v in self.vdims:
            total *= v.evaluate(params)
        return total

    def all_physical(self, params: Mapping[str, int]):
        """Iterate every physical processor coordinate."""
        shape = self.physical_shape(params)
        coords = [()]
        for extent in shape:
            coords = [c + (k,) for c in coords for k in range(extent)]
        return coords

    @staticmethod
    def linear(vdim: ExtentLike, pdim=None) -> "ProcSpace":
        """A 1-D space; physical extent defaults to the symbol ``P``."""
        if pdim is None:
            pdim = LinExpr.var("P")
        return ProcSpace((vdim,), (pdim,))

    @staticmethod
    def grid(vdims: Sequence[ExtentLike], pdims=None) -> "ProcSpace":
        """A q-D space; physical extents default to ``P0..P{q-1}``."""
        vdims = tuple(vdims)
        if pdims is None:
            pdims = tuple(LinExpr.var(f"P{k}") for k in range(len(vdims)))
        return ProcSpace(vdims, pdims)

    def __str__(self) -> str:
        v = " x ".join(str(d) for d in self.vdims)
        p = " x ".join(str(d) for d in self.pdims)
        return f"ProcSpace(virtual {v} on physical {p})"
