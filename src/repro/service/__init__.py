"""Compiler-as-a-service layer: parallel batch compilation and the
long-lived ``repro serve`` entrypoint.

Both build on the persistent content-addressed cache
(:mod:`repro.polyhedra.diskcache`): pool workers warm one shared cache
directory, and the server amortizes in-memory caches across requests.
"""

from .batch import BatchResult, CompileJob, compile_many
from .server import CompileServer, serve_stdio, serve_tcp

__all__ = [
    "BatchResult",
    "CompileJob",
    "CompileServer",
    "compile_many",
    "serve_stdio",
    "serve_tcp",
]
