"""``python -m repro serve`` -- a long-lived compile server.

One process keeps every cache tier warm across requests: the in-memory
projection cache and feasibility memo, the parse memo below, and (when
started with ``--cache-dir``) the persistent content-addressed store.
Amortizing those over a session is the whole point -- the first compile
of a program pays cold cost, every later request for the same job is a
whole-result cache hit.

Protocol: JSON lines.  Each request is one JSON object per line (or a
JSON *array* of objects, answered by an array in the same order -- the
batched form).  A compile request::

    {"id": 7, "program": "<loop source>", "blocks": {"i": 32},
     "options": {"aggregate": true}, "emit": "c"}

answers::

    {"id": 7, "ok": true, "code": "...", "from_cache": false,
     "seconds": 0.41, "schema_version": 1}

Control requests: ``{"op": "ping"}``, ``{"op": "stats"}`` (per-request
latency percentiles, hit rates, disk cache occupancy) and
``{"op": "shutdown"}``.  Malformed or failing requests answer
``{"ok": false, "error": ...}`` on their line; they never kill the
server.  Transports: stdio (default) or a local TCP socket
(``--port``), one connection per client, same line protocol.
"""

from __future__ import annotations

import json
import socketserver
import threading
import time
from collections import OrderedDict, deque
from dataclasses import fields as dc_fields
from typing import Dict, List, Optional

from ..codegen import SPMDOptions
from ..core import compiler as _compiler
from ..decomp import block_loop
from ..lang import parse
from ..polyhedra import diskcache


def comps_from_blocks(program, blocks: Dict[str, int]):
    """Block-distribute the named loops of every statement (the same
    decomposition ``repro compile --block`` builds)."""
    if not blocks:
        raise ValueError("request needs a non-empty 'blocks' mapping")
    comps = {}
    space = None
    for stmt in program.statements():
        vars_ = [v for v in blocks if v in stmt.iter_vars]
        if len(vars_) != len(blocks):
            missing = [v for v in blocks if v not in stmt.iter_vars]
            raise ValueError(
                f"statement {stmt.name} lacks blocked loop(s) {missing}"
            )
        sizes = [int(blocks[v]) for v in vars_]
        comp = block_loop(stmt, vars_, sizes, space=space)
        space = comp.space
        comps[stmt.name] = comp
    return comps


def options_from_dict(overrides: Optional[Dict]) -> SPMDOptions:
    """Build SPMDOptions from a request's ``options`` object."""
    overrides = overrides or {}
    valid = {f.name for f in dc_fields(SPMDOptions)}
    unknown = sorted(set(overrides) - valid)
    if unknown:
        raise ValueError(f"unknown option(s) {unknown}; valid: "
                         f"{sorted(valid)}")
    return SPMDOptions(**overrides)


def _percentile(sorted_values: List[float], q: float) -> float:
    if not sorted_values:
        return 0.0
    idx = min(len(sorted_values) - 1, int(q * len(sorted_values)))
    return sorted_values[idx]


#: how many recent request latencies stats() percentiles cover, and how
#: many distinct programs the parse memo retains -- both bounded so a
#: long-lived server's memory stays flat no matter how many requests
#: it has answered.
LATENCY_WINDOW = 2048
PARSE_MEMO_SIZE = 256


class CompileServer:
    """Transport-agnostic request handler (stdio and TCP share it)."""

    def __init__(
        self,
        cache_dir: Optional[str] = None,
        max_bytes: Optional[int] = None,
    ):
        self.disk = (
            diskcache.DiskCache(cache_dir, max_bytes=max_bytes)
            if cache_dir is not None else None
        )
        self._lock = threading.Lock()
        # one compile at a time: generate_spmd resets process-global
        # fresh-name counters at entry, so two compiles interleaving in
        # the threaded TCP transport could hand out duplicate "fresh"
        # names and publish a corrupt artifact into the persistent
        # cache.  Serializing compiles keeps every artifact
        # bit-identical to a sequential compile of the same request.
        self._compile_lock = threading.Lock()
        self._parse_memo: "OrderedDict[tuple, object]" = OrderedDict()
        self.requests = 0
        self.errors = 0
        self.cache_hits = 0
        self.latencies: "deque[float]" = deque(maxlen=LATENCY_WINDOW)
        self.closing = False

    # -- request handling -------------------------------------------------

    def handle_line(self, line: str) -> str:
        """One protocol line in, one protocol line out."""
        try:
            obj = json.loads(line)
        except ValueError as exc:
            return json.dumps({"ok": False, "error": f"bad JSON: {exc}"})
        if isinstance(obj, list):  # batched form
            return json.dumps([self.handle_request(r) for r in obj])
        return json.dumps(self.handle_request(obj))

    def handle_request(self, obj) -> Dict:
        if not isinstance(obj, dict):
            return {"ok": False, "error": "request must be a JSON object"}
        reply = {"ok": True}
        if "id" in obj:
            reply["id"] = obj["id"]
        op = obj.get("op", "compile")
        try:
            if op == "ping":
                reply["pong"] = True
            elif op == "stats":
                reply.update(self.stats())
            elif op == "shutdown":
                self.closing = True
                reply["bye"] = True
            elif op == "compile":
                reply.update(self._compile(obj))
            else:
                raise ValueError(f"unknown op {op!r}")
        except Exception as exc:  # a bad request never kills the server
            with self._lock:
                self.errors += 1
            return {
                **({"id": obj["id"]} if "id" in obj else {}),
                "ok": False,
                "error": f"{type(exc).__name__}: {exc}",
            }
        return reply

    def _parse(self, source: str, name: str):
        key = (source, name)
        with self._lock:
            program = self._parse_memo.get(key)
            if program is not None:
                self._parse_memo.move_to_end(key)  # LRU touch
        if program is None:
            program = parse(source, name=name)
            with self._lock:
                self._parse_memo[key] = program
                self._parse_memo.move_to_end(key)
                while len(self._parse_memo) > PARSE_MEMO_SIZE:
                    self._parse_memo.popitem(last=False)
        return program

    def _compile(self, obj: Dict) -> Dict:
        if "program" not in obj:
            raise ValueError("compile request needs a 'program' field")
        start = time.perf_counter()
        program = self._parse(obj["program"], obj.get("name", "<request>"))
        comps = comps_from_blocks(program, obj.get("blocks") or {})
        options = options_from_dict(obj.get("options"))
        # scoped activation: the server's store serves this request
        # without repointing other contexts.  The compile lock
        # serializes compile_distributed across connection threads --
        # see __init__ -- while cheap ops (ping, stats) stay unblocked.
        with self._compile_lock, diskcache.activated(self.disk):
            result = _compiler.compile_distributed(
                program, comps, options=options
            )
        elapsed = time.perf_counter() - start
        with self._lock:
            self.requests += 1
            self.latencies.append(elapsed)
            if result.from_cache:
                self.cache_hits += 1
        out = {
            "from_cache": result.from_cache,
            "seconds": round(elapsed, 6),
            "schema_version": result.schema_version,
            "commsets": len(result.spmd.commsets),
        }
        emit = obj.get("emit", "c")
        if emit == "c":
            out["code"] = result.c_text
        elif emit == "python":
            out["code"] = result.spmd.source
        elif emit not in (None, "none"):
            raise ValueError(f"unknown emit {emit!r}")
        return out

    # -- accounting -------------------------------------------------------

    def stats(self) -> Dict:
        with self._lock:
            # percentiles cover a bounded window of recent requests, so
            # a long-lived server's stats calls stay O(window), not
            # O(lifetime requests)
            lat = sorted(self.latencies)
            requests = self.requests
            hits = self.cache_hits
            errors = self.errors
        info = {
            "requests": requests,
            "errors": errors,
            "result_cache_hits": hits,
            "hit_rate": (hits / requests) if requests else 0.0,
            "latency_p50": _percentile(lat, 0.50),
            "latency_p95": _percentile(lat, 0.95),
            "latency_window": len(lat),
        }
        if self.disk is not None:
            info["disk"] = self.disk.stats()
        return info


# ---------------------------------------------------------------------------
# transports
# ---------------------------------------------------------------------------

def serve_stdio(server: CompileServer, stdin=None, stdout=None) -> int:
    """JSON lines on stdin/stdout until EOF or a shutdown request."""
    import sys

    stdin = stdin if stdin is not None else sys.stdin
    stdout = stdout if stdout is not None else sys.stdout
    for line in stdin:
        if not line.strip():
            continue
        stdout.write(server.handle_line(line) + "\n")
        stdout.flush()
        if server.closing:
            break
    return 0


class _Handler(socketserver.StreamRequestHandler):
    def handle(self):
        server: CompileServer = self.server.compile_server
        for raw in self.rfile:
            line = raw.decode("utf-8", errors="replace")
            if not line.strip():
                continue
            self.wfile.write(
                (server.handle_line(line) + "\n").encode("utf-8")
            )
            self.wfile.flush()
            if server.closing:
                # stop accepting; must run off the serving thread
                threading.Thread(
                    target=self.server.shutdown, daemon=True
                ).start()
                return


class TCPCompileServer(socketserver.ThreadingTCPServer):
    """One thread per connection; all share one CompileServer (and so
    one set of warm caches).  Compiles themselves are serialized by the
    CompileServer's compile lock; concurrency buys pipelining of
    parse/IO against compute, not parallel codegen."""

    allow_reuse_address = True
    daemon_threads = True

    def __init__(self, address, compile_server: CompileServer):
        super().__init__(address, _Handler)
        self.compile_server = compile_server

    @property
    def port(self) -> int:
        return self.server_address[1]


def serve_tcp(
    server: CompileServer, host: str, port: int, announce=None
) -> int:
    """Serve the line protocol on a local TCP socket (``port=0`` binds
    an ephemeral port; the bound port is announced)."""
    with TCPCompileServer((host, port), server) as tcp:
        if announce is not None:
            announce(tcp.port)
        tcp.serve_forever(poll_interval=0.1)
    return 0
