"""Parallel batch compilation over a process pool.

``compile_many`` fans a list of :class:`CompileJob` requests out to a
``ProcessPoolExecutor``.  Each worker runs the ordinary
``compile_distributed`` pipeline -- fresh-name counters reset per
compile, so a pooled compile is bit-identical to a sequential one (the
batch tests assert this with ``serialize.results_equal``).  When a
``cache_dir`` is given, every worker activates the same persistent
cache, so the pool collectively warms one store and later jobs hit
artifacts published by earlier workers.

Jobs cross the process boundary as single pickled units, which
preserves the identity relations inside them (the ``CompDecomp``
entries reference the very ``Statement`` objects inside the program).
Results come back as ``serialize.dump_result`` artifact bytes -- the
same format the disk cache stores -- and are rebuilt in the parent, so
workers never need to pickle live node-program closures.
"""

from __future__ import annotations

import os
import sys
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..core import compiler as _compiler
from ..core import serialize
from ..decomp import CompDecomp, DataDecomp
from ..ir import Program
from ..polyhedra import diskcache, stats


@dataclass
class CompileJob:
    """One compile request: the exact arguments of ``compile_distributed``."""

    program: Program
    comps: Dict[str, CompDecomp]
    initial_data: Optional[Dict[str, DataDecomp]] = None
    options: Optional[object] = None
    #: free-form tag echoed back on the result's position; purely for
    #: the caller's bookkeeping (benchmarks label jobs by workload).
    label: str = ""


@dataclass
class BatchResult:
    """Results of one ``compile_many`` call, in job order."""

    results: List[_compiler.CompileResult]
    #: element-wise sum of every job's per-compile poly_stats delta
    #: (workers count independently; the merge makes the batch look like
    #: one sequential run to ``stats.summary``).
    poly_stats: Dict[str, int] = field(default_factory=dict)
    seconds: float = 0.0
    workers: int = 1

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self):
        return iter(self.results)

    def __getitem__(self, idx):
        return self.results[idx]


def merge_poly_stats(deltas: Sequence[Dict[str, int]]) -> Dict[str, int]:
    """Sum per-compile counter deltas into one batch-wide delta."""
    merged: Dict[str, int] = {}
    for delta in deltas:
        for name, value in delta.items():
            merged[name] = merged.get(name, 0) + value
    return merged


# ---------------------------------------------------------------------------
# worker side
# ---------------------------------------------------------------------------

def _worker_init(paths: List[str], cache_dir: Optional[str],
                 max_bytes: Optional[int]) -> None:
    """Run once per pool worker: make ``repro`` importable (spawn start
    methods do not inherit a mutated ``sys.path``) and point the worker
    at the shared persistent cache."""
    for p in reversed(paths):
        if p not in sys.path:
            sys.path.insert(0, p)
    if cache_dir is not None:
        diskcache.activate(cache_dir, max_bytes=max_bytes)


def _worker_compile(job: CompileJob) -> Tuple[bytes, bool, float]:
    """Compile one job; ship the result back as artifact bytes.

    Returns ``(dump_result bytes, from_cache, compile_seconds)``.  The
    artifact bytes are the cache's storage format, so anything a worker
    can return, the parent can rebuild bit-identically.
    """
    result = _compiler.compile_distributed(
        job.program, job.comps,
        initial_data=job.initial_data, options=job.options,
    )
    return (
        serialize.dump_result(result),
        result.from_cache,
        result.compile_seconds,
    )


# ---------------------------------------------------------------------------
# driver side
# ---------------------------------------------------------------------------

def compile_many(
    jobs: Sequence[CompileJob],
    workers: Optional[int] = None,
    cache_dir: Optional[str] = None,
    max_bytes: Optional[int] = None,
) -> BatchResult:
    """Compile ``jobs`` in parallel; results come back in job order.

    ``workers=None`` sizes the pool to ``min(len(jobs), cpu_count)``;
    ``workers<=1`` (or a single job) compiles sequentially in-process,
    which is also the fallback that keeps the API usable where process
    pools are unavailable.  ``cache_dir`` activates one shared
    persistent cache in every worker (and in-process for the sequential
    path), so the batch warms the store as it runs.
    """
    jobs = list(jobs)
    start = time.perf_counter()
    if workers is None:
        workers = min(len(jobs), os.cpu_count() or 1) or 1
    workers = max(1, int(workers))

    if workers == 1 or len(jobs) <= 1:
        with diskcache.using(cache_dir, max_bytes=max_bytes):
            results = [
                _compiler.compile_distributed(
                    job.program, job.comps,
                    initial_data=job.initial_data, options=job.options,
                )
                for job in jobs
            ]
        return BatchResult(
            results,
            poly_stats=merge_poly_stats([r.poly_stats for r in results]),
            seconds=time.perf_counter() - start,
            workers=1,
        )

    for job in jobs:  # fail fast, before any worker is spawned
        serialize.check_program_picklable(job.program)

    src_paths = [p for p in sys.path if p]
    results: List[_compiler.CompileResult] = []
    with ProcessPoolExecutor(
        max_workers=workers,
        initializer=_worker_init,
        initargs=(src_paths, cache_dir, max_bytes),
    ) as pool:
        futures = [pool.submit(_worker_compile, job) for job in jobs]
        for fut in futures:
            blob, from_cache, seconds = fut.result()
            result = serialize.load_result(blob)
            result.from_cache = from_cache
            result.compile_seconds = seconds
            results.append(result)
    return BatchResult(
        results,
        poly_stats=merge_poly_stats([r.poly_stats for r in results]),
        seconds=time.perf_counter() - start,
        workers=workers,
    )
